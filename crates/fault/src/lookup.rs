//! The two fault-tolerant lookup algorithms of §6.3.
//!
//! Both emulate the *canonical path* of Claim 2.4: from server `V`
//! with segment midpoint `z`, the point `h = w(σ(z)_t, y)` lies inside
//! `s(V)`, and `t` backward-map steps lead exactly to `y` (backward
//! maps are exact expansions in fixed point). Every step of the
//! canonical path is covered by `Θ(log n)` servers, all of them
//! mutual neighbors of the previous step's covers.

use crate::net::{FaultModel, OverlapNet, OverlapNodeId};
use cd_core::point::Point;
use rand::Rng;

/// Result of a Simple Lookup.
#[derive(Clone, Debug)]
pub struct SimpleRoute {
    /// Servers that handled the message.
    pub hops: Vec<OverlapNodeId>,
    /// Whether a live cover of the target was reached.
    pub ok: bool,
}

/// Result of a majority (false-message-resistant) lookup.
#[derive(Clone, Debug)]
pub struct MajorityOutcome {
    /// Did the querier decide on the *authentic* value?
    pub correct: bool,
    /// Parallel time (number of covering-set steps).
    pub time: usize,
    /// Total messages sent across all steps.
    pub messages: usize,
}

impl OverlapNet {
    /// The canonical-path point sequence from `from`'s segment to `y`:
    /// `h = w(σ(z)_t, y)` followed by the exact backward expansions
    /// ending at `y`'s truncation (then `y` itself).
    fn canonical_points(&self, from: OverlapNodeId, y: Point) -> Vec<Point> {
        let seg = self.node(from).segment;
        if seg.contains(y) {
            return vec![y];
        }
        let z = seg.midpoint();
        let mut t = 0u32;
        let mut h = y;
        while !seg.contains(h) {
            t += 1;
            assert!(t <= 64, "canonical path failed to enter the segment");
            h = y.prefix_walk(z, t);
        }
        let mut pts = Vec::with_capacity(t as usize + 2);
        for j in 0..=t {
            pts.push(Point(h.bits() << j));
        }
        // final correction from the truncated point to y itself
        if *pts.last().expect("nonempty") != y {
            pts.push(y);
        }
        pts
    }

    /// Simple Lookup (Theorem 6.3): forward to one random *live* cover
    /// of each successive canonical point. Fails only if some point of
    /// the path has no live cover in the current table (Theorem 6.4:
    /// w.h.p. never, for small failure probability).
    pub fn simple_lookup(
        &self,
        from: OverlapNodeId,
        y: Point,
        rng: &mut impl Rng,
    ) -> SimpleRoute {
        debug_assert!(self.alive(from), "querier must be alive");
        let pts = self.canonical_points(from, y);
        let mut hops = vec![from];
        let mut cur = from;
        for &p in pts.iter().skip(1) {
            if self.node(cur).segment.contains(p) && self.alive(cur) {
                continue; // already covered locally
            }
            let nbrs = &self.node(cur).neighbors;
            let live: Vec<OverlapNodeId> = nbrs
                .iter()
                .copied()
                .filter(|&nb| self.alive(nb) && self.node(nb).segment.contains(p))
                .collect();
            if live.is_empty() {
                return SimpleRoute { hops, ok: false };
            }
            let next = live[rng.gen_range(0..live.len())];
            hops.push(next);
            cur = next;
        }
        SimpleRoute { hops, ok: self.node(cur).segment.contains(y) && self.alive(cur) }
    }

    /// False-message-resistant lookup (Theorem 6.6). The query floods
    /// along the covering sets of the canonical path; the *response*
    /// (the item value, authentic unless a liar corrupts it) floods
    /// back with majority filtering at every step. Returns whether the
    /// querier decides correctly, plus time and message counts.
    ///
    /// Liar semantics: a `failed` server under
    /// [`FaultModel::FalseMessageInjection`] participates in routing
    /// but always vouches for a corrupted value.
    pub fn majority_lookup(&self, from: OverlapNodeId, y: Point) -> MajorityOutcome {
        assert_eq!(self.model, FaultModel::FalseMessageInjection);
        let pts = self.canonical_points(from, y);
        let mut messages = 0usize;
        // Response propagation: covering sets from the target back to
        // the querier. A server's belief is `true` (authentic) if the
        // majority of copies it received are authentic; liars always
        // transmit `false`.
        let mut step_sets: Vec<Vec<OverlapNodeId>> =
            pts.iter().rev().map(|&p| self.covers_of(p)).collect();
        // the querier itself receives the final step
        step_sets.push(vec![from]);
        let mut belief: std::collections::BTreeMap<OverlapNodeId, bool> =
            step_sets[0].iter().map(|&id| (id, true)).collect();
        for w in step_sets.windows(2) {
            let (senders, receivers) = (&w[0], &w[1]);
            let mut next: std::collections::BTreeMap<OverlapNodeId, bool> = Default::default();
            for &r in receivers {
                let mut votes_true = 0usize;
                let mut votes_false = 0usize;
                for &s in senders {
                    if s == r {
                        // a server already holding the value keeps it
                    }
                    // edge exists: covers of adjacent canonical points
                    // are mutual neighbors (validated in net.rs)
                    let value = if self.failed.contains(&s) {
                        false // liar corrupts
                    } else {
                        *belief.get(&s).unwrap_or(&false)
                    };
                    messages += 1;
                    if value {
                        votes_true += 1;
                    } else {
                        votes_false += 1;
                    }
                }
                next.insert(r, votes_true > votes_false);
            }
            belief = next;
        }
        let correct = *belief.get(&from).unwrap_or(&false);
        MajorityOutcome { correct, time: step_sets.len() - 1, messages }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cd_core::rng::seeded;

    #[test]
    fn simple_lookup_works_without_faults() {
        let mut rng = seeded(1);
        let net = OverlapNet::build(512, &mut rng);
        for _ in 0..200 {
            let from = OverlapNodeId(rng.gen_range(0..512));
            let y = Point(rng.gen());
            let r = net.simple_lookup(from, y, &mut rng);
            assert!(r.ok, "lookup failed in a fault-free network");
        }
    }

    #[test]
    fn theorem_6_3_path_length() {
        // length ≤ log n + O(1)
        let mut rng = seeded(2);
        let n = 1024usize;
        let net = OverlapNet::build(n, &mut rng);
        let bound = (n as f64).log2() + 4.0;
        for _ in 0..300 {
            let from = OverlapNodeId(rng.gen_range(0..n as u32));
            let y = Point(rng.gen());
            let r = net.simple_lookup(from, y, &mut rng);
            assert!(r.ok);
            assert!(
                (r.hops.len() as f64 - 1.0) <= bound,
                "{} hops > log n + O(1)",
                r.hops.len() - 1
            );
        }
    }

    #[test]
    fn theorem_6_4_survives_random_failstop() {
        let mut rng = seeded(3);
        let n = 1024usize;
        let mut net = OverlapNet::build(n, &mut rng);
        net.fail_random(0.2, &mut rng);
        let mut failures = 0usize;
        let trials = 300usize;
        for _ in 0..trials {
            let from = loop {
                let id = OverlapNodeId(rng.gen_range(0..n as u32));
                if net.alive(id) {
                    break id;
                }
            };
            let y = Point(rng.gen());
            if !net.simple_lookup(from, y, &mut rng).ok {
                failures += 1;
            }
        }
        assert!(
            failures == 0,
            "{failures}/{trials} lookups failed under p = 0.2 fail-stop"
        );
    }

    #[test]
    fn theorem_6_6_majority_lookup_correct_under_liars() {
        let mut rng = seeded(4);
        let n = 1024usize;
        let mut net = OverlapNet::build(n, &mut rng);
        net.model = FaultModel::FalseMessageInjection;
        net.fail_random(0.15, &mut rng);
        let logn = (n as f64).log2();
        for _ in 0..100 {
            let from = loop {
                let id = OverlapNodeId(rng.gen_range(0..n as u32));
                if net.alive(id) {
                    break id;
                }
            };
            let y = Point(rng.gen());
            let out = net.majority_lookup(from, y);
            assert!(out.correct, "querier deceived despite honest majorities");
            assert!(
                (out.time as f64) <= logn + 5.0,
                "parallel time {} ≫ log n",
                out.time
            );
            assert!(
                (out.messages as f64) <= 40.0 * logn.powi(3),
                "messages {} ≫ log³ n = {}",
                out.messages,
                logn.powi(3)
            );
        }
    }

    #[test]
    fn majority_lookup_fails_when_liars_dominate() {
        // sanity inversion: with 80% liars majorities flip and the
        // querier is (almost always) deceived
        let mut rng = seeded(5);
        let mut net = OverlapNet::build(512, &mut rng);
        net.model = FaultModel::FalseMessageInjection;
        net.fail_random(0.8, &mut rng);
        let mut deceived = 0usize;
        for _ in 0..50 {
            let from = loop {
                let id = OverlapNodeId(rng.gen_range(0..512));
                if net.alive(id) {
                    break id;
                }
            };
            let out = net.majority_lookup(from, Point(rng.gen()));
            if !out.correct {
                deceived += 1;
            }
        }
        assert!(deceived > 40, "only {deceived}/50 deceived at 80% liars");
    }
}
