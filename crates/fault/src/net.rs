//! The overlapping discretisation `G` of §6.2.
//!
//! Construction (Join Algorithm of §6.2, executed for all servers):
//! `x_i` uniform; `α_i = log₂(1/d(x_i, pred))` estimates `log n`
//! within a multiplicative factor (Lemma 6.2 band); `y_i` is chosen so
//! that `[x_i, y_i]` contains exactly `⌈α_i⌉` other identifier points,
//! which makes `|s(V_i)| = Θ(log n / n)` w.h.p. (Property II).
//!
//! Edges: `V_i ~ V_j` iff their segments are connected in the
//! continuous graph (`ℓ/r/b` images intersect) **or overlap**. Every
//! point is covered by `Θ(log n)` servers, every server has degree
//! `Θ(log n)`.

use cd_core::interval::Interval;
use cd_core::point::Point;
use rand::Rng;
use std::collections::BTreeSet;

/// Handle to a server of the overlapping network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OverlapNodeId(pub u32);

// Since the protocol-API redesign the failure models are transport
// behaviors (`dh_proto::Faulty` wraps any transport with them for the
// plain DH network); this crate re-exports the shared vocabulary and
// keeps the §6 *overlapping discretisation*, which is a genuinely
// different topology rather than a failure mode.
pub use dh_proto::FaultModel;

/// One server.
#[derive(Clone, Debug)]
pub struct OverlapNode {
    /// Identifier point `x_i` (fixed).
    pub x: Point,
    /// Covered segment `[x_i, y_i]`.
    pub segment: Interval,
    /// Neighbor table.
    pub neighbors: Vec<OverlapNodeId>,
}

/// The overlapping Distance Halving network plus fault state.
pub struct OverlapNet {
    nodes: Vec<OverlapNode>,
    /// Identifier points sorted (bits, id) for cover queries.
    index: Vec<(u64, OverlapNodeId)>,
    /// Longest segment (bounds cover scans).
    max_seg: u128,
    /// Currently failed servers.
    pub failed: BTreeSet<OverlapNodeId>,
    /// Failure semantics for `failed` servers.
    pub model: FaultModel,
}

impl OverlapNet {
    /// Build an `n`-server network with uniformly random identifiers.
    pub fn build(n: usize, rng: &mut impl Rng) -> Self {
        assert!(n >= 8, "the overlap construction needs a few servers");
        let mut xs: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        xs.sort_unstable();
        xs.dedup();
        while xs.len() < n {
            xs.push(rng.gen());
            xs.sort_unstable();
            xs.dedup();
        }
        Self::from_points(&xs)
    }

    /// Build from explicit (sorted, distinct) identifier points.
    pub fn from_points(xs: &[u64]) -> Self {
        let n = xs.len();
        let mut nodes: Vec<OverlapNode> = Vec::with_capacity(n);
        for i in 0..n {
            let x = Point(xs[i]);
            let pred = Point(xs[(i + n - 1) % n]);
            let d = x.offset_from(pred).max(1);
            // α_i: the local log n estimate (Lemma 6.2)
            let alpha = ((u64::MAX as f64 / d as f64).log2().ceil() as usize).clamp(1, n - 1);
            // y_i: the α_i-th successor ⇒ the segment contains exactly
            // α_i other identifier points
            let y = Point(xs[(i + alpha) % n]);
            let len = y.offset_from(x).max(1);
            nodes.push(OverlapNode {
                x,
                segment: Interval::new(x, len as u128),
                neighbors: Vec::new(),
            });
        }
        let index: Vec<(u64, OverlapNodeId)> =
            xs.iter().enumerate().map(|(i, &b)| (b, OverlapNodeId(i as u32))).collect();
        let max_seg = nodes.iter().map(|nd| nd.segment.len()).max().expect("nonempty");
        let mut net =
            OverlapNet { nodes, index, max_seg, failed: BTreeSet::new(), model: FaultModel::FailStop };
        for i in 0..n {
            let id = OverlapNodeId(i as u32);
            net.nodes[i].neighbors = net.derive_neighbors(id);
        }
        net
    }

    /// Number of servers (live and failed).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff no servers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    pub fn node(&self, id: OverlapNodeId) -> &OverlapNode {
        &self.nodes[id.0 as usize]
    }

    /// Is the server alive (not failed)?
    pub fn alive(&self, id: OverlapNodeId) -> bool {
        !self.failed.contains(&id)
    }

    /// Fail each server independently with probability `p`
    /// (keeps the first live server guaranteed for experiment setup).
    pub fn fail_random(&mut self, p: f64, rng: &mut impl Rng) {
        self.failed.clear();
        for i in 0..self.nodes.len() {
            if rng.gen_bool(p) {
                self.failed.insert(OverlapNodeId(i as u32));
            }
        }
    }

    /// All servers covering point `p` (regardless of liveness).
    pub fn covers_of(&self, p: Point) -> Vec<OverlapNodeId> {
        // candidates have x ∈ (p − max_seg, p]; scan the sorted index
        let mut out = Vec::new();
        let n = self.index.len();
        let start = match self.index.binary_search_by_key(&p.bits(), |e| e.0) {
            Ok(i) => i,
            Err(0) => n - 1,
            Err(i) => i - 1,
        };
        let mut i = start;
        let mut scanned = 0usize;
        loop {
            let (_, id) = self.index[i];
            let seg = &self.nodes[id.0 as usize].segment;
            if seg.contains(p) {
                out.push(id);
            } else if (p.offset_from(Point(self.index[i].0)) as u128) > self.max_seg {
                break;
            }
            i = (i + n - 1) % n;
            scanned += 1;
            if scanned >= n {
                break;
            }
        }
        out
    }

    /// Live servers covering `p`.
    pub fn live_covers_of(&self, p: Point) -> Vec<OverlapNodeId> {
        self.covers_of(p).into_iter().filter(|id| self.alive(*id)).collect()
    }

    /// Derive the neighbor table of `id`: servers whose segments
    /// intersect `s`, `ℓ(s)`, `r(s)` or `b(s)`.
    fn derive_neighbors(&self, id: OverlapNodeId) -> Vec<OverlapNodeId> {
        let seg = self.nodes[id.0 as usize].segment;
        let mut ids: BTreeSet<OverlapNodeId> = BTreeSet::new();
        let mut arcs: Vec<Interval> = vec![seg];
        arcs.extend(seg.image_left().into_iter().flatten());
        arcs.extend(seg.image_right().into_iter().flatten());
        let b = seg.image_backward();
        arcs.push(Interval::new(
            b.start(),
            (b.len() + 2).min(cd_core::interval::FULL),
        ));
        for arc in arcs {
            ids.extend(self.intersecting(&arc));
        }
        ids.remove(&id);
        let mut v: Vec<OverlapNodeId> = ids.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Servers whose segment intersects the arc.
    fn intersecting(&self, arc: &Interval) -> Vec<OverlapNodeId> {
        // candidates: x ∈ (arc.start − max_seg, arc.end)
        let mut out = Vec::new();
        for &(_, id) in &self.index {
            if self.nodes[id.0 as usize].segment.intersects(arc) {
                out.push(id);
            }
        }
        out
    }

    /// Degree statistics `(max, mean)` — Θ(log n) by construction.
    pub fn degree_stats(&self) -> (usize, f64) {
        let max = self.nodes.iter().map(|n| n.neighbors.len()).max().unwrap_or(0);
        let sum: usize = self.nodes.iter().map(|n| n.neighbors.len()).sum();
        (max, sum as f64 / self.len() as f64)
    }

    /// Coverage statistics: `(min, mean)` number of servers covering a
    /// sample of random points — Θ(log n) by Property I+II.
    pub fn coverage_stats(&self, samples: usize, rng: &mut impl Rng) -> (usize, f64) {
        let mut min = usize::MAX;
        let mut sum = 0usize;
        for _ in 0..samples {
            let c = self.covers_of(Point(rng.gen())).len();
            min = min.min(c);
            sum += c;
        }
        (min, sum as f64 / samples as f64)
    }

    /// Validate: every neighbor relation is symmetric and every
    /// point's covers are mutual neighbors (the clique property §6.2
    /// uses for parallel access).
    pub fn validate(&self, rng: &mut impl Rng) {
        for (i, node) in self.nodes.iter().enumerate() {
            let id = OverlapNodeId(i as u32);
            for &nb in &node.neighbors {
                assert!(
                    self.nodes[nb.0 as usize].neighbors.contains(&id),
                    "asymmetric table {id:?} → {nb:?}"
                );
            }
        }
        for _ in 0..50 {
            let p = Point(rng.gen());
            let covers = self.covers_of(p);
            for &a in &covers {
                for &b in &covers {
                    if a != b {
                        assert!(
                            self.nodes[a.0 as usize].neighbors.contains(&b),
                            "covers of {p:?} are not a clique: {a:?} !~ {b:?}"
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cd_core::rng::seeded;

    #[test]
    fn coverage_is_logarithmic() {
        let mut rng = seeded(1);
        let n = 1024usize;
        let net = OverlapNet::build(n, &mut rng);
        let (min, mean) = net.coverage_stats(300, &mut rng);
        let logn = (n as f64).log2();
        assert!(min >= 2, "minimum coverage {min} too small");
        assert!(
            mean >= 0.5 * logn && mean <= 6.0 * logn,
            "mean coverage {mean} outside Θ(log n) = {logn}"
        );
    }

    #[test]
    fn degrees_are_logarithmic() {
        let mut rng = seeded(2);
        let n = 1024usize;
        let net = OverlapNet::build(n, &mut rng);
        let (max, mean) = net.degree_stats();
        let logn = (n as f64).log2();
        assert!(mean >= logn, "mean degree {mean} below log n");
        assert!(max as f64 <= 40.0 * logn, "max degree {max} ≫ log n");
    }

    #[test]
    fn structure_validates() {
        let mut rng = seeded(3);
        let net = OverlapNet::build(256, &mut rng);
        net.validate(&mut rng);
    }

    #[test]
    fn fail_random_hits_expected_fraction() {
        let mut rng = seeded(4);
        let mut net = OverlapNet::build(512, &mut rng);
        net.fail_random(0.3, &mut rng);
        let f = net.failed.len() as f64 / 512.0;
        assert!((f - 0.3).abs() < 0.08, "failure fraction {f}");
    }

    #[test]
    fn covers_of_matches_bruteforce() {
        let mut rng = seeded(5);
        let net = OverlapNet::build(128, &mut rng);
        for _ in 0..100 {
            let p = Point(rng.gen());
            let mut got = net.covers_of(p);
            got.sort_unstable();
            let mut want: Vec<OverlapNodeId> = (0..net.len() as u32)
                .map(OverlapNodeId)
                .filter(|id| net.node(*id).segment.contains(p))
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }
}
