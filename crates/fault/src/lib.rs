//! # dh-fault — the Overlapping Distance Halving DHT (Section 6)
//!
//! Same continuous graph as the plain DHT, different discretisation:
//! segments **overlap**. Server `V_i` covers `s(V_i) = [x_i, y_i]`
//! with `|s(V_i)| = Θ(log n / n)`, derived purely locally — `log n` is
//! estimated from the distance to the ring predecessor (Lemma 6.2) —
//! so every point of `I` is covered by `Θ(log n)` servers and every
//! data item is stored `Θ(log n)` times.
//!
//! * **Simple Lookup** (Theorem 6.3): emulate the canonical backward
//!   path of Claim 2.4, forwarding each hop to *one random live* cover
//!   of the next point. `log n + O(1)` hops; survives random fail-stop
//!   of a constant fraction of servers (Theorem 6.4).
//! * **Majority Lookup** (Theorem 6.6): forward each hop to **all**
//!   `Θ(log n)` covers; a server accepts a value only when a majority
//!   of the previous covering set vouches for it. Correct retrieval
//!   under random *false message injection* with `O(log n)` time and
//!   `O(log³ n)` messages.
//!
//! The crate also wires in `dh-erasure` (§6.2's suggestion): instead of
//! full replicas, covers can hold Reed-Solomon shares, any
//! `k`-of-`m` of which reconstruct the item.
//!
//! Since the protocol-API redesign, the two failure models themselves
//! ([`FaultModel`]) live in `dh_proto` and are implemented as
//! *transport behaviors* (`dh_proto::Faulty` drops a fail-stopped
//! server's traffic or corrupts a liar's payloads under any inner
//! transport), so the plain Distance Halving DHT can be driven under
//! both adversaries through the same event engine. What remains here
//! is what genuinely is not a transport: the §6 *overlapping
//! discretisation* — a different topology with Θ(log n)-fold coverage
//! — and its Simple/Majority lookups.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod net;
pub mod lookup;
pub mod storage;

pub use net::{FaultModel, OverlapNet, OverlapNodeId};
