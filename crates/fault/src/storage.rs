//! Erasure-coded storage on the overlapping DHT (§6.2).
//!
//! All servers covering `h(item)` form a clique, so once one of them
//! is located the rest are one hop away and can be queried in
//! parallel. Instead of full replicas, each cover holds one
//! Reed-Solomon share; any `k` live covers reconstruct the item —
//! the paper's digital-fountain suggestion (after Byers et al. and
//! Weatherspoon-Kubiatowicz).

use crate::net::{OverlapNet, OverlapNodeId};
use cd_core::point::Point;
use dh_erasure::{decode, encode, Share};
use rand::Rng;
use std::collections::HashMap;

/// Erasure-coded item store layered over an [`OverlapNet`].
pub struct ErasureStore {
    /// Reconstruction threshold `k`.
    pub k: usize,
    /// Shares held per server, per item.
    shelves: HashMap<(OverlapNodeId, u64), Share>,
    /// Item locations (`h(item)`), fixed at store time.
    locations: HashMap<u64, Point>,
}

impl ErasureStore {
    /// New store with reconstruction threshold `k`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        ErasureStore { k, shelves: HashMap::new(), locations: HashMap::new() }
    }

    /// Store `value` for `item` hashed to `location`: one share per
    /// covering server. Returns the number of shares placed.
    pub fn put(&mut self, net: &OverlapNet, item: u64, location: Point, value: &[u8]) -> usize {
        let covers = net.covers_of(location);
        assert!(
            covers.len() >= self.k,
            "not enough covers ({}) for threshold k = {}",
            covers.len(),
            self.k
        );
        let shares = encode(value, self.k, covers.len());
        for (server, share) in covers.iter().zip(shares) {
            self.shelves.insert((*server, item), share);
        }
        self.locations.insert(item, location);
        covers.len()
    }

    /// Retrieve `item` from `from`: Simple Lookup to one live cover,
    /// then pull shares from the live covers (one hop each, clique)
    /// until `k` are gathered. Returns the value and the number of
    /// share-fetch messages, or `None` if reconstruction failed.
    pub fn get(
        &self,
        net: &OverlapNet,
        from: OverlapNodeId,
        item: u64,
        rng: &mut impl Rng,
    ) -> Option<(Vec<u8>, usize)> {
        let location = *self.locations.get(&item)?;
        let route = net.simple_lookup(from, location, rng);
        if !route.ok {
            return None;
        }
        let mut shares = Vec::new();
        let mut messages = route.hops.len() - 1;
        for server in net.live_covers_of(location) {
            if let Some(share) = self.shelves.get(&(server, item)) {
                shares.push(share.clone());
                messages += 1;
                if shares.len() == self.k {
                    break;
                }
            }
        }
        decode(&shares, self.k).map(|v| (v, messages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cd_core::rng::seeded;

    #[test]
    fn put_get_roundtrip() {
        let mut rng = seeded(1);
        let net = OverlapNet::build(256, &mut rng);
        let mut store = ErasureStore::new(3);
        let loc = Point(rng.gen());
        let placed = store.put(&net, 7, loc, b"erasure-coded payload");
        assert!(placed >= 3);
        let from = OverlapNodeId(rng.gen_range(0..256));
        let (value, _) = store.get(&net, from, 7, &mut rng).expect("reconstructs");
        assert_eq!(value, b"erasure-coded payload");
    }

    #[test]
    fn survives_failures_up_to_threshold() {
        let mut rng = seeded(2);
        let mut net = OverlapNet::build(512, &mut rng);
        let mut store = ErasureStore::new(3);
        let loc = Point(rng.gen());
        store.put(&net, 1, loc, b"resilient");
        net.fail_random(0.25, &mut rng);
        let mut ok = 0usize;
        let trials = 50usize;
        for _ in 0..trials {
            let from = loop {
                let id = OverlapNodeId(rng.gen_range(0..512));
                if net.alive(id) {
                    break id;
                }
            };
            if let Some((v, _)) = store.get(&net, from, 1, &mut rng) {
                assert_eq!(v, b"resilient");
                ok += 1;
            }
        }
        assert!(ok >= trials * 9 / 10, "only {ok}/{trials} retrievals under p = 0.25");
    }

    #[test]
    fn storage_overhead_beats_replication() {
        // m shares of size |v|/k vs m replicas of size |v|:
        // k× saving, the Weatherspoon-Kubiatowicz argument.
        let mut rng = seeded(3);
        let net = OverlapNet::build(256, &mut rng);
        let mut store = ErasureStore::new(4);
        let value = vec![0xAB; 4096];
        let loc = Point(rng.gen());
        let m = store.put(&net, 9, loc, &value);
        let total: usize = store.shelves.values().map(|s| s.data.len()).sum();
        let replication_total = m * value.len();
        assert!(
            total * 3 < replication_total,
            "erasure total {total} not ≪ replication {replication_total}"
        );
    }

    #[test]
    fn missing_item_returns_none() {
        let mut rng = seeded(4);
        let net = OverlapNet::build(64, &mut rng);
        let store = ErasureStore::new(2);
        assert!(store.get(&net, OverlapNodeId(0), 42, &mut rng).is_none());
    }
}
