//! Erasure-coded storage on the overlapping DHT (§6.2).
//!
//! All servers covering `h(item)` form a clique, so once one of them
//! is located the rest are one hop away and can be queried in
//! parallel. Instead of full replicas, each cover holds one
//! Reed-Solomon share; any `k` live covers reconstruct the item —
//! the paper's digital-fountain suggestion (after Byers et al. and
//! Weatherspoon-Kubiatowicz).

use crate::net::{OverlapNet, OverlapNodeId};
use bytes::Bytes;
use cd_core::point::Point;
use dh_erasure::{encode, open, seal, try_decode, ShareHeader};
use rand::Rng;
use std::collections::HashMap;

/// Erasure-coded item store layered over an [`OverlapNet`].
///
/// **Superseded by `dh_replica::ReplicatedDht`**, which runs the same
/// §6.2 clique protocol as wire traffic through the event engine —
/// with quorum reads, versioned overwrites and churn-driven repair —
/// on any `CdNetwork` instance. This offline model survives as the
/// overlapping-discretisation sketch, but it is *bridged onto the new
/// subsystem's substrate* so the two cannot drift: shares rest on the
/// shelves in the same sealed, versioned form
/// ([`dh_erasure::header`]), reads filter to the newest complete
/// version and reconstruct via [`dh_erasure::try_decode`], exactly as
/// the replicated store does.
pub struct ErasureStore {
    /// Reconstruction threshold `k`.
    pub k: usize,
    /// Sealed shares held per server, per item (the `dh_replica`
    /// shelf format: header ‖ payload).
    shelves: HashMap<(OverlapNodeId, u64), Bytes>,
    /// Item locations (`h(item)`), fixed at store time.
    locations: HashMap<u64, Point>,
    /// Per-item version counter (bumped on every overwrite).
    versions: HashMap<u64, u32>,
}

impl ErasureStore {
    /// New store with reconstruction threshold `k`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        ErasureStore {
            k,
            shelves: HashMap::new(),
            locations: HashMap::new(),
            versions: HashMap::new(),
        }
    }

    /// Store `value` for `item` hashed to `location`: one share per
    /// covering server, sealed with a fresh item version. Returns the
    /// number of shares placed.
    pub fn put(&mut self, net: &OverlapNet, item: u64, location: Point, value: &[u8]) -> usize {
        let covers = net.covers_of(location);
        assert!(
            covers.len() >= self.k,
            "not enough covers ({}) for threshold k = {}",
            covers.len(),
            self.k
        );
        let version = self.versions.entry(item).and_modify(|v| *v += 1).or_insert(1);
        let m = covers.len().min(255);
        let shares = encode(value, self.k, m);
        for (server, share) in covers.iter().zip(shares) {
            let header =
                ShareHeader { version: *version, index: share.index, k: self.k as u8, m: m as u8 };
            self.shelves.insert((*server, item), seal(header, &share));
        }
        self.locations.insert(item, location);
        m
    }

    /// Retrieve `item` from `from`: Simple Lookup to one live cover,
    /// then pull shares from the live covers (one hop each, clique)
    /// until `k` of the newest version are gathered. Returns the value
    /// and the number of share-fetch messages, or `None` if
    /// reconstruction failed.
    pub fn get(
        &self,
        net: &OverlapNet,
        from: OverlapNodeId,
        item: u64,
        rng: &mut impl Rng,
    ) -> Option<(Vec<u8>, usize)> {
        let location = *self.locations.get(&item)?;
        let route = net.simple_lookup(from, location, rng);
        if !route.ok {
            return None;
        }
        let version = *self.versions.get(&item)?;
        let mut shares = Vec::new();
        let mut messages = route.hops.len() - 1;
        for server in net.live_covers_of(location) {
            if let Some(sealed) = self.shelves.get(&(server, item)) {
                messages += 1;
                // an unopenable blob is one damaged share, not a
                // failed read — the remaining covers still reconstruct
                let Ok((header, share)) = open(sealed) else { continue };
                // a quorum read only combines shares of one generation
                if header.version == version {
                    shares.push(share);
                    if shares.len() == self.k {
                        break;
                    }
                }
            }
        }
        try_decode(&shares, self.k).ok().map(|v| (v, messages))
    }

    /// Forget `item` entirely: its location, version and **every**
    /// shelf entry, on whichever servers hold one. Returns the number
    /// of shares freed. (Without this, shelves of removed items leaked
    /// for the life of the store.)
    pub fn remove(&mut self, item: u64) -> usize {
        self.locations.remove(&item);
        self.versions.remove(&item);
        let before = self.shelves.len();
        self.shelves.retain(|&(_, it), _| it != item);
        before - self.shelves.len()
    }

    /// Number of shares currently on shelves (leak detector for
    /// tests).
    pub fn shelved(&self) -> usize {
        self.shelves.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cd_core::rng::seeded;

    #[test]
    fn put_get_roundtrip() {
        let mut rng = seeded(1);
        let net = OverlapNet::build(256, &mut rng);
        let mut store = ErasureStore::new(3);
        let loc = Point(rng.gen());
        let placed = store.put(&net, 7, loc, b"erasure-coded payload");
        assert!(placed >= 3);
        let from = OverlapNodeId(rng.gen_range(0..256));
        let (value, _) = store.get(&net, from, 7, &mut rng).expect("reconstructs");
        assert_eq!(value, b"erasure-coded payload");
    }

    #[test]
    fn survives_failures_up_to_threshold() {
        let mut rng = seeded(2);
        let mut net = OverlapNet::build(512, &mut rng);
        let mut store = ErasureStore::new(3);
        let loc = Point(rng.gen());
        store.put(&net, 1, loc, b"resilient");
        net.fail_random(0.25, &mut rng);
        let mut ok = 0usize;
        let trials = 50usize;
        for _ in 0..trials {
            let from = loop {
                let id = OverlapNodeId(rng.gen_range(0..512));
                if net.alive(id) {
                    break id;
                }
            };
            if let Some((v, _)) = store.get(&net, from, 1, &mut rng) {
                assert_eq!(v, b"resilient");
                ok += 1;
            }
        }
        assert!(ok >= trials * 9 / 10, "only {ok}/{trials} retrievals under p = 0.25");
    }

    #[test]
    fn storage_overhead_beats_replication() {
        // m shares of size |v|/k vs m replicas of size |v|:
        // k× saving, the Weatherspoon-Kubiatowicz argument.
        let mut rng = seeded(3);
        let net = OverlapNet::build(256, &mut rng);
        let mut store = ErasureStore::new(4);
        let value = vec![0xAB; 4096];
        let loc = Point(rng.gen());
        let m = store.put(&net, 9, loc, &value);
        let total: usize = store.shelves.values().map(|s| s.len()).sum();
        let replication_total = m * value.len();
        assert!(
            total * 3 < replication_total,
            "erasure total {total} not ≪ replication {replication_total}"
        );
    }

    #[test]
    fn missing_item_returns_none() {
        let mut rng = seeded(4);
        let net = OverlapNet::build(64, &mut rng);
        let store = ErasureStore::new(2);
        assert!(store.get(&net, OverlapNodeId(0), 42, &mut rng).is_none());
    }

    #[test]
    fn remove_frees_every_shelf_entry() {
        let mut rng = seeded(5);
        let net = OverlapNet::build(256, &mut rng);
        let mut store = ErasureStore::new(3);
        for item in 0..10u64 {
            store.put(&net, item, Point(rng.gen()), b"short-lived");
        }
        assert!(store.shelved() > 0);
        let freed: usize = (0..10u64).map(|item| store.remove(item)).sum();
        assert_eq!(store.shelved(), 0, "remove must not leak shelves");
        assert!(freed >= 30, "every placed share must be freed");
        // removed items are gone for readers too
        assert!(store.get(&net, OverlapNodeId(0), 3, &mut rng).is_none());
        // double remove is a no-op
        assert_eq!(store.remove(3), 0);
    }

    #[test]
    fn overwrite_reads_back_the_newest_version() {
        let mut rng = seeded(6);
        let net = OverlapNet::build(256, &mut rng);
        let mut store = ErasureStore::new(3);
        let loc = Point(rng.gen());
        store.put(&net, 8, loc, b"generation one");
        store.put(&net, 8, loc, b"generation two");
        let (v, _) = store.get(&net, OverlapNodeId(1), 8, &mut rng).expect("reconstructs");
        assert_eq!(v, b"generation two");
    }
}
