//! Erasure-coded storage on the overlapping DHT (§6.2).
//!
//! All servers covering `h(item)` form a clique, so once one of them
//! is located the rest are one hop away and can be queried in
//! parallel. Instead of full replicas, each cover holds one
//! Reed-Solomon share; any `k` live covers reconstruct the item —
//! the paper's digital-fountain suggestion (after Byers et al. and
//! Weatherspoon-Kubiatowicz).

use crate::net::{OverlapNet, OverlapNodeId};
use cd_core::point::Point;
use dh_erasure::{encode, try_decode, Share, ShareHeader};
use dh_proto::node::NodeId;
use dh_store::{Holder, MemShelves, ShelfError, Shelves};
use rand::Rng;

/// Erasure-coded item store layered over an [`OverlapNet`].
///
/// **Superseded by `dh_replica::ReplicatedDht`**, which runs the same
/// §6.2 clique protocol as wire traffic through the event engine —
/// with quorum reads, versioned overwrites and churn-driven repair —
/// on any `CdNetwork` instance. This offline model survives as the
/// overlapping-discretisation sketch, but it is *routed through the
/// new subsystem's substrate* so the two cannot drift: shares rest on
/// a [`dh_store::Shelves`] backend in the same sealed, versioned form
/// ([`dh_erasure::header`]), writes follow the park-then-commit
/// discipline, and reads filter to the committed generation and
/// reconstruct via [`dh_erasure::try_decode`], exactly as the
/// replicated store does. Generic over the backend, so the sketch runs
/// over a crash-consistent [`dh_store::FileShelves`] WAL as readily as
/// over RAM.
pub struct ErasureStore<S: Shelves = MemShelves> {
    /// Reconstruction threshold `k`.
    pub k: usize,
    /// The shelf backend: item → placement, sealed shares keyed by
    /// cover index (the `dh_replica` shelf format).
    pub shelves: S,
}

impl ErasureStore<MemShelves> {
    /// New store with reconstruction threshold `k`, on the in-memory
    /// backend.
    pub fn new(k: usize) -> Self {
        ErasureStore::with_shelves(k, MemShelves::new())
    }
}

impl<S: Shelves> ErasureStore<S> {
    /// New store with reconstruction threshold `k` over an explicit
    /// backend — e.g. a reopened [`dh_store::FileShelves`] carrying
    /// the shares a previous process shelved.
    pub fn with_shelves(k: usize, shelves: S) -> Self {
        assert!(k >= 1);
        ErasureStore { k, shelves }
    }

    /// Store `value` for `item` hashed to `location`: one share per
    /// covering server, sealed with a fresh item version, parked and
    /// then committed (the atomic write sequence). Returns the number
    /// of shares placed.
    pub fn put(&mut self, net: &OverlapNet, item: u64, location: Point, value: &[u8]) -> usize {
        let covers = net.covers_of(location);
        assert!(
            covers.len() >= self.k,
            "not enough covers ({}) for threshold k = {}",
            covers.len(),
            self.k
        );
        let version = self.shelves.map().get(&item).map(|it| it.version).unwrap_or(0) + 1;
        let m = covers.len().min(255);
        let shares = encode(value, self.k, m);
        for (i, (server, share)) in covers.iter().zip(shares).enumerate() {
            let header =
                ShareHeader { version, index: share.index, k: self.k as u8, m: m as u8 };
            let holder = Holder::seal(NodeId(server.0), header, &share);
            self.shelves.park(item, location, i as u8, holder);
        }
        self.shelves.commit(item, version);
        m
    }

    /// Retrieve `item` from `from`: Simple Lookup to one live cover,
    /// then pull shares from the live covers (one hop each, clique)
    /// until `k` of the committed generation are gathered. Returns the
    /// value and the number of share-fetch messages, or the typed
    /// reason the read failed — a [`ShelfError::Missing`] item is an
    /// answer, a [`ShelfError::Corrupt`] one is an integrity incident.
    pub fn get(
        &self,
        net: &OverlapNet,
        from: OverlapNodeId,
        item: u64,
        rng: &mut impl Rng,
    ) -> Result<(Vec<u8>, usize), ShelfError> {
        let state = self.shelves.map().get(&item).ok_or(ShelfError::Missing)?;
        let location = state.point;
        let route = net.simple_lookup(from, location, rng);
        if !route.ok {
            return Err(ShelfError::Unreachable);
        }
        let version = state.version;
        let mut shares: Vec<Share> = Vec::new();
        let mut damaged = 0usize;
        let mut messages = route.hops.len() - 1;
        for server in net.live_covers_of(location) {
            let held = state
                .holders
                .values()
                .find(|h| h.node == NodeId(server.0) && h.version == version);
            if let Some(holder) = held {
                messages += 1;
                // an unopenable blob is one damaged share, not a
                // failed read — the remaining covers still reconstruct
                match holder.share() {
                    Some(share) => {
                        shares.push(share);
                        if shares.len() == self.k {
                            break;
                        }
                    }
                    None => damaged += 1,
                }
            }
        }
        if shares.len() < self.k {
            return Err(if damaged > 0 {
                ShelfError::Corrupt { intact: shares.len(), damaged, needed: self.k }
            } else {
                ShelfError::UnderQuorum { intact: shares.len(), needed: self.k }
            });
        }
        match try_decode(&shares, self.k) {
            Ok(value) => Ok((value, messages)),
            Err(_) => Err(ShelfError::Corrupt { intact: shares.len(), damaged, needed: self.k }),
        }
    }

    /// Forget `item` entirely: its location, version and **every**
    /// shelf entry, on whichever servers hold one. Returns the number
    /// of shares freed. (Without this, shelves of removed items leaked
    /// for the life of the store.)
    pub fn remove(&mut self, item: u64) -> usize {
        let freed =
            self.shelves.map().get(&item).map(|it| it.holders.len()).unwrap_or(0);
        self.shelves.remove(item);
        freed
    }

    /// Number of shares currently on shelves (leak detector for
    /// tests).
    pub fn shelved(&self) -> usize {
        self.shelves.shelved_shares()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cd_core::rng::seeded;

    #[test]
    fn put_get_roundtrip() {
        let mut rng = seeded(1);
        let net = OverlapNet::build(256, &mut rng);
        let mut store = ErasureStore::new(3);
        let loc = Point(rng.gen());
        let placed = store.put(&net, 7, loc, b"erasure-coded payload");
        assert!(placed >= 3);
        let from = OverlapNodeId(rng.gen_range(0..256));
        let (value, _) = store.get(&net, from, 7, &mut rng).expect("reconstructs");
        assert_eq!(value, b"erasure-coded payload");
    }

    #[test]
    fn survives_failures_up_to_threshold() {
        let mut rng = seeded(2);
        let mut net = OverlapNet::build(512, &mut rng);
        let mut store = ErasureStore::new(3);
        let loc = Point(rng.gen());
        store.put(&net, 1, loc, b"resilient");
        net.fail_random(0.25, &mut rng);
        let mut ok = 0usize;
        let trials = 50usize;
        for _ in 0..trials {
            let from = loop {
                let id = OverlapNodeId(rng.gen_range(0..512));
                if net.alive(id) {
                    break id;
                }
            };
            if let Ok((v, _)) = store.get(&net, from, 1, &mut rng) {
                assert_eq!(v, b"resilient");
                ok += 1;
            }
        }
        assert!(ok >= trials * 9 / 10, "only {ok}/{trials} retrievals under p = 0.25");
    }

    #[test]
    fn storage_overhead_beats_replication() {
        // m shares of size |v|/k vs m replicas of size |v|:
        // k× saving, the Weatherspoon-Kubiatowicz argument.
        let mut rng = seeded(3);
        let net = OverlapNet::build(256, &mut rng);
        let mut store = ErasureStore::new(4);
        let value = vec![0xAB; 4096];
        let loc = Point(rng.gen());
        let m = store.put(&net, 9, loc, &value);
        let total: usize = store
            .shelves
            .map()
            .values()
            .flat_map(|it| it.holders.values())
            .map(|h| h.sealed.len())
            .sum();
        let replication_total = m * value.len();
        assert!(
            total * 3 < replication_total,
            "erasure total {total} not ≪ replication {replication_total}"
        );
    }

    #[test]
    fn missing_item_is_a_typed_answer() {
        let mut rng = seeded(4);
        let net = OverlapNet::build(64, &mut rng);
        let store = ErasureStore::new(2);
        assert_eq!(
            store.get(&net, OverlapNodeId(0), 42, &mut rng).unwrap_err(),
            ShelfError::Missing
        );
    }

    #[test]
    fn remove_frees_every_shelf_entry() {
        let mut rng = seeded(5);
        let net = OverlapNet::build(256, &mut rng);
        let mut store = ErasureStore::new(3);
        for item in 0..10u64 {
            store.put(&net, item, Point(rng.gen()), b"short-lived");
        }
        assert!(store.shelved() > 0);
        let freed: usize = (0..10u64).map(|item| store.remove(item)).sum();
        assert_eq!(store.shelved(), 0, "remove must not leak shelves");
        assert!(freed >= 30, "every placed share must be freed");
        // removed items are gone for readers too
        assert_eq!(
            store.get(&net, OverlapNodeId(0), 3, &mut rng).unwrap_err(),
            ShelfError::Missing
        );
        // double remove is a no-op
        assert_eq!(store.remove(3), 0);
    }

    #[test]
    fn overwrite_reads_back_the_newest_version() {
        let mut rng = seeded(6);
        let net = OverlapNet::build(256, &mut rng);
        let mut store = ErasureStore::new(3);
        let loc = Point(rng.gen());
        store.put(&net, 8, loc, b"generation one");
        store.put(&net, 8, loc, b"generation two");
        let (v, _) = store.get(&net, OverlapNodeId(1), 8, &mut rng).expect("reconstructs");
        assert_eq!(v, b"generation two");
    }

    #[test]
    fn damaged_blobs_report_corrupt_not_missing() {
        let mut rng = seeded(7);
        let net = OverlapNet::build(64, &mut rng);
        let mut store = ErasureStore::new(3);
        let loc = Point(rng.gen());
        store.put(&net, 2, loc, b"integrity matters");
        // smash every sealed blob of the item
        let damaged: Vec<(u8, Holder)> = store.shelves.map()[&2]
            .holders
            .iter()
            .map(|(&idx, h)| {
                let mut bad = h.sealed.to_vec();
                for b in bad.iter_mut() {
                    *b ^= 0xFF;
                }
                (idx, Holder { node: h.node, version: h.version, sealed: bytes::Bytes::from(bad) })
            })
            .collect();
        for (idx, holder) in damaged {
            store.shelves.park(2, loc, idx, holder);
        }
        let err = store.get(&net, OverlapNodeId(1), 2, &mut rng).unwrap_err();
        assert!(
            matches!(err, ShelfError::Corrupt { intact: 0, needed: 3, .. }),
            "all-damaged item must read as Corrupt, got {err}"
        );
    }

    #[test]
    fn runs_over_a_file_backed_wal() {
        use dh_store::{FileShelves, ScratchPath};
        let scratch = ScratchPath::new("fault-store");
        let mut rng = seeded(8);
        let net = OverlapNet::build(128, &mut rng);
        let loc = Point(rng.gen());
        {
            let shelves = FileShelves::open(scratch.path()).unwrap();
            let mut store = ErasureStore::with_shelves(3, shelves);
            store.put(&net, 11, loc, b"persistent sketch");
        }
        // a fresh process reopens the WAL and serves the same item
        let shelves = FileShelves::open(scratch.path()).unwrap();
        let store = ErasureStore::with_shelves(3, shelves);
        let (v, _) = store.get(&net, OverlapNodeId(5), 11, &mut rng).expect("recovers");
        assert_eq!(v, b"persistent sketch");
    }
}
