//! Achieving smoothness in two dimensions (§5.3): the 2D Multiple
//! Choice algorithm and the Definition 7 smoothness check.
//!
//! For a joining server: sample `t·log n` random points; prefer one
//! whose *small* rectangle (the `1/√(2n) × 1/√(2n)` grid) **and**
//! *big* rectangle (the `√(2/n) × √(2/n)` grid) are both empty;
//! otherwise any with an empty small rectangle; otherwise fail to the
//! first sample. Lemma 5.3: after `n` inserts the configuration has
//! smoothness ≤ 2 w.h.p. — every big rectangle occupied, every small
//! rectangle at most singly occupied.
//!
//! (Note: Definition 7 in the paper text swaps the two quantifiers —
//! as stated, `ρn` small rectangles each containing a point would need
//! `ρn ≤ n` points. We implement the intent, which is also what the
//! Lemma 5.3 proof uses: **coverage** of the `n/ρ` big rectangles and
//! **separation** on the `ρn` small ones.)

use rand::Rng;

/// A point set in `[0,1)²` with grid-occupancy queries, supporting the
/// 2D Multiple Choice join rule.
///
/// The rectangle grids are sized for the *target* population `n`, as
/// in the paper's Lemma 5.3 (which assumes an accurate estimate of
/// `n`): the proof inserts `n` points against the fixed `2n`/`n/2`
/// grids. (A fully dynamic variant would re-derive the estimate from
/// the current population; the accuracy assumption is the same one the
/// paper makes.)
#[derive(Clone, Debug)]
pub struct TwoDMultipleChoice {
    points: Vec<(f64, f64)>,
    /// Samples per `log₂ n` (the paper's `t`; ≥ 3 for the lemma).
    pub t: usize,
    /// The target population the grids are sized for.
    pub target: usize,
}

impl TwoDMultipleChoice {
    /// Empty set with sampling parameter `t` and target size `target`.
    pub fn new(t: usize, target: usize) -> Self {
        TwoDMultipleChoice { points: Vec::new(), t: t.max(1), target: target.max(2) }
    }

    /// The points inserted so far.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff no points have been inserted.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn count_in_cell(&self, k: usize, cx: usize, cy: usize) -> usize {
        // O(n) scan; experiment sizes (n ≤ 8192) keep builds fast, and
        // correctness-first beats a stale occupancy cache under churn.
        let k = k as f64;
        self.points
            .iter()
            .filter(|&&(x, y)| {
                (x * k) as usize == cx && (y * k) as usize == cy
            })
            .count()
    }

    fn cell_of(k: usize, p: (f64, f64)) -> (usize, usize) {
        let k = k as f64;
        ((p.0 * k) as usize, (p.1 * k) as usize)
    }

    /// Side of the small grid: `⌈√(2n)⌉` for the target `n`.
    pub fn small_side(&self) -> usize {
        (((self.target * 2) as f64).sqrt().ceil() as usize).max(1)
    }

    /// Side of the big grid: `⌊√(n/2)⌋` for the target `n`.
    pub fn big_side(&self) -> usize {
        ((self.target as f64 / 2.0).sqrt().floor() as usize).max(1)
    }

    /// Join one server: run the 2D Multiple Choice rule and insert the
    /// chosen point. Returns it.
    pub fn join(&mut self, rng: &mut impl Rng) -> (f64, f64) {
        let n = self.target;
        let samples = (self.t as f64 * (n as f64).log2()).ceil() as usize;
        let ks = self.small_side();
        let kb = self.big_side();
        let zs: Vec<(f64, f64)> =
            (0..samples.max(1)).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
        // preferred: small and big rectangles both empty
        let mut fallback: Option<(f64, f64)> = None;
        let mut chosen: Option<(f64, f64)> = None;
        for &z in &zs {
            let (sx, sy) = Self::cell_of(ks, z);
            if self.count_in_cell(ks, sx, sy) > 0 {
                continue;
            }
            if fallback.is_none() {
                fallback = Some(z);
            }
            let (bx, by) = Self::cell_of(kb, z);
            if self.count_in_cell(kb, bx, by) == 0 {
                chosen = Some(z);
                break;
            }
        }
        let p = chosen.or(fallback).unwrap_or(zs[0]);
        self.points.push(p);
        p
    }

    /// Grow to `n` points (grids sized for `n`).
    pub fn build(n: usize, t: usize, rng: &mut impl Rng) -> Self {
        let mut s = Self::new(t, n);
        while s.len() < n {
            s.join(rng);
        }
        s
    }
}

/// Report of the Definition-7 style smoothness-2 check.
#[derive(Clone, Copy, Debug)]
pub struct Smoothness2Report {
    /// Number of *big* (`√(2/n)`-side) rectangles with no point —
    /// must be 0 for smoothness ≤ 2.
    pub empty_big: usize,
    /// Number of *small* (`1/√(2n)`-side) rectangles holding ≥ 2
    /// points — must be 0 for smoothness ≤ 2.
    pub crowded_small: usize,
    /// Maximum points found in any small rectangle.
    pub max_small_occupancy: usize,
}

impl Smoothness2Report {
    /// Did the configuration pass (smoothness ≤ 2)?
    pub fn passed(&self) -> bool {
        self.empty_big == 0 && self.crowded_small == 0
    }
}

/// Check the smoothness-2 conditions for a point set of size `n = 2m²`
/// (so both grids are exact: `2n = (2m)²` small cells, `n/2 = m²` big
/// cells).
pub fn smoothness2_check(points: &[(f64, f64)]) -> Smoothness2Report {
    let n = points.len();
    let m = ((n as f64) / 2.0).sqrt().round() as usize;
    assert_eq!(2 * m * m, n, "smoothness-2 check requires n = 2m² (got n = {n})");
    let ks = 2 * m; // small grid side: (2m)² = 2n cells
    let kb = m; // big grid side: m² = n/2 cells
    let mut small = vec![0usize; ks * ks];
    let mut big = vec![0usize; kb * kb];
    for &(x, y) in points {
        let sx = ((x * ks as f64) as usize).min(ks - 1);
        let sy = ((y * ks as f64) as usize).min(ks - 1);
        small[sx * ks + sy] += 1;
        let bx = ((x * kb as f64) as usize).min(kb - 1);
        let by = ((y * kb as f64) as usize).min(kb - 1);
        big[bx * kb + by] += 1;
    }
    Smoothness2Report {
        empty_big: big.iter().filter(|&&c| c == 0).count(),
        crowded_small: small.iter().filter(|&&c| c >= 2).count(),
        max_small_occupancy: small.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cd_core::rng::seeded;

    #[test]
    fn lemma_5_3_multiple_choice_reaches_smoothness_2() {
        let mut rng = seeded(1);
        let n = 2 * 16 * 16; // 512 = 2m², m = 16
        let s = TwoDMultipleChoice::build(n, 4, &mut rng);
        let report = smoothness2_check(s.points());
        assert!(
            report.passed(),
            "2D multiple choice failed: {} empty big, {} crowded small",
            report.empty_big,
            report.crowded_small
        );
    }

    #[test]
    fn single_choice_2d_fails_smoothness_2() {
        // contrast: uniform random points collide in small rectangles
        // and miss big ones with constant probability per cell
        let mut rng = seeded(2);
        let n = 2 * 16 * 16;
        let points: Vec<(f64, f64)> =
            (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
        let report = smoothness2_check(&points);
        assert!(
            !report.passed(),
            "uniform random points unexpectedly smooth (p ≈ e^{{-Ω(n)}})"
        );
    }

    #[test]
    fn lattice_passes_trivially() {
        let m = 8usize;
        let mut pts = Vec::new();
        // 2m² points: two shifted m×m lattices… use a (2m)×m grid
        for i in 0..(2 * m) {
            for j in 0..m {
                pts.push((
                    (i as f64 + 0.5) / (2.0 * m as f64),
                    (j as f64 + 0.5) / m as f64,
                ));
            }
        }
        let report = smoothness2_check(&pts);
        assert_eq!(report.empty_big, 0);
        // the (2m)² small grid: our lattice has 2m columns and only m
        // rows, so vertically adjacent cells share… actually each small
        // cell column index hits one point per two rows: occupancy ≤ 1
        assert!(report.max_small_occupancy <= 1);
    }

    #[test]
    fn grows_to_requested_size() {
        let mut rng = seeded(3);
        let s = TwoDMultipleChoice::build(100, 3, &mut rng);
        assert_eq!(s.len(), 100);
    }
}
