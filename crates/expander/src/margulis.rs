//! The classical discrete Margulis expander on `Z_m × Z_m` — the
//! integer sibling of the Gabber-Galil continuous graph, with a proven
//! constant spectral gap (`λ ≤ 5√2/8` for the 8-regular variant). Used
//! as a known-good baseline for the expansion verifier and as the
//! degenerate `ρ = 1` case of the discretisation (a perfect lattice of
//! cells).

/// Adjacency lists of the 8-regular Margulis graph on `Z_m × Z_m`:
/// each vertex `(x, y)` connects to
/// `(x+y, y), (x+y+1, y), (x, y+x), (x, y+x+1)` and the four inverses.
pub fn margulis_graph(m: usize) -> Vec<Vec<usize>> {
    assert!(m >= 2);
    let idx = |x: usize, y: usize| -> usize { (x % m) * m + (y % m) };
    let n = m * m;
    let mut adj = vec![Vec::with_capacity(8); n];
    for x in 0..m {
        for y in 0..m {
            let u = idx(x, y);
            let targets = [idx(x + y, y), idx(x + y + 1, y), idx(x, y + x), idx(x, y + x + 1)];
            for t in targets {
                adj[u].push(t);
                adj[t].push(u);
            }
        }
    }
    adj
}

/// The shift-free Gabber-Galil action on `Z_m × Z_m` (4 maps `f, g,
/// f⁻¹, g⁻¹`): the exact discrete analogue of the continuous graph the
/// paper discretises. (Without the `+1` shifts this family is an
/// expander on the torus minus the origin's orbit; we include it to
/// compare against the Voronoi discretisation, which plays the same
/// role with irregular cells.)
pub fn gg_lattice_graph(m: usize) -> Vec<Vec<usize>> {
    assert!(m >= 2);
    let idx = |x: usize, y: usize| -> usize { (x % m) * m + (y % m) };
    let n = m * m;
    let mut adj = vec![Vec::with_capacity(8); n];
    for x in 0..m {
        for y in 0..m {
            let u = idx(x, y);
            for t in [idx(x + y, y), idx(x, y + x)] {
                adj[u].push(t);
                adj[t].push(u);
            }
        }
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectral::analyze;

    #[test]
    fn margulis_is_8_regular() {
        let adj = margulis_graph(10);
        assert_eq!(adj.len(), 100);
        assert!(adj.iter().all(|a| a.len() == 8));
    }

    #[test]
    fn margulis_gap_is_constant_in_m() {
        // proven: λ₂ ≤ 5√2/8 ≈ 0.884 ⇒ gap ≥ 0.116 for every m.
        // Estimates converge to the asymptotic constant from above as
        // m grows; every size must clear the proven floor.
        for m in [8usize, 12, 16, 24, 32] {
            let r = analyze(&margulis_graph(m), 400, m as u64);
            assert!(r.gap > 0.11, "m={m}: gap {} below the proven bound", r.gap);
        }
    }

    #[test]
    fn cycle_comparison_sanity() {
        // contrast: the gap of a non-expander decays at the same sizes
        let cycle = |n: usize| -> Vec<Vec<usize>> {
            (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect()
        };
        let rc = analyze(&cycle(576), 800, 42);
        let rm = analyze(&margulis_graph(24), 400, 43);
        assert!(rm.gap > 10.0 * rc.gap, "margulis {} vs cycle {}", rm.gap, rc.gap);
    }

    #[test]
    fn gg_lattice_expands_for_prime_m_only() {
        // The shift-free linear maps have invariant subgroups on
        // composite Z_m (e.g. the even sublattice of Z_16), so
        // expansion needs m prime — exactly the regime of Larsen's
        // routing result the paper cites (§5.2). The continuous torus
        // has no such subgroups, which is why the Voronoi
        // discretisation doesn't suffer from this.
        let prime = analyze(&gg_lattice_graph(17), 600, 44);
        assert!(prime.gap > 0.04, "prime m: gap {}", prime.gap);
        let composite = analyze(&gg_lattice_graph(16), 600, 45);
        assert!(
            composite.gap < prime.gap,
            "composite m should expand worse: {} vs {}",
            composite.gap,
            prime.gap
        );
    }
}
