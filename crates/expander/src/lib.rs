//! # cd-expander — dynamic constant-degree expanders (Section 5)
//!
//! The paper's second architecture: discretise the **Gabber-Galil
//! continuous expander** over `I = [0,1)²` — neighbours of `(x,y)` are
//! `f(x,y) = (x+y, y)`, `g(x,y) = (x, x+y)` and their inverses — using
//! a dynamic Voronoi decomposition of the torus into server cells. By
//! Theorem 5.1 (Gabber-Galil) every set of measure ≤ 1/2 expands by
//! `(2−√3)/2`, so (Corollary 5.2) any *smooth* decomposition yields a
//! network with degree `Θ(ρ)` and expansion `Ω((2−√3)/ρ)` — expansion
//! that can be *verified* from smoothness, unlike randomized
//! constructions.
//!
//! Components:
//! * [`gg`] — the discretisation: cell adjacency from the Voronoi
//!   diagram plus the cells overlapped by each cell's image under
//!   `f, g, f⁻¹, g⁻¹`,
//! * [`spectral`] — expansion verification: the spectral gap of the
//!   normalized adjacency operator (power iteration with deflation)
//!   and sweep-cut conductance (Cheeger witnesses),
//! * [`margulis`] — the classical discrete Margulis expander on
//!   `Z_m × Z_m`, a known-gap baseline for the verifier,
//! * [`balance2d`] — the 2D Multiple Choice algorithm (Lemma 5.3):
//!   smoothness ≤ 2 w.h.p., making the expander constant-degree.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod balance2d;
pub mod gg;
pub mod margulis;
pub mod spectral;

pub use balance2d::{smoothness2_check, TwoDMultipleChoice};
pub use gg::GgExpander;
