//! Discretisation of the Gabber-Galil continuous expander over a torus
//! Voronoi decomposition (§5.2).
//!
//! Each server owns a Voronoi cell. Two cells are connected iff they
//! contain adjacent points of the continuous graph — i.e. iff
//! `T(C_i) ∩ C_j ≠ ∅` for one of the four transformations
//! `T ∈ {f, g, f⁻¹, g⁻¹}` — or share a Voronoi boundary (the dual
//! Delaunay edges a deployment maintains anyway for the diagram
//! itself). Since the maps are affine shears and cells are convex, the
//! overlap test is an exact convex-polygon intersection (with a
//! conservative ε of one grid unit, so boundary-touching pairs count
//! as adjacent).

use cd_geometry::polygon::{affine, centroid, convex_intersect};
use cd_geometry::predicates::GRID;
use cd_geometry::TorusVoronoi;

/// The four Gabber-Galil shears as affine matrices over grid coords.
const MAPS: [[f64; 4]; 4] = [
    [1.0, 1.0, 0.0, 1.0],  // f:  (x+y, y)
    [1.0, 0.0, 1.0, 1.0],  // g:  (x, x+y)
    [1.0, -1.0, 0.0, 1.0], // f⁻¹: (x−y, y)
    [1.0, 0.0, -1.0, 1.0], // g⁻¹: (x, y−x)
];

/// A discretised Gabber-Galil expander network.
pub struct GgExpander {
    voronoi: TorusVoronoi,
    /// Continuous-graph edges (from the four shears), per cell.
    gg_adj: Vec<Vec<usize>>,
    /// Voronoi (Delaunay) adjacency, per cell.
    cell_adj: Vec<Vec<usize>>,
}

impl GgExpander {
    /// Discretise over the Voronoi diagram of `points` (unit square).
    pub fn build(points: &[(f64, f64)]) -> Self {
        let voronoi = TorusVoronoi::build(points);
        Self::from_voronoi(voronoi)
    }

    /// Discretise an existing diagram.
    pub fn from_voronoi(voronoi: TorusVoronoi) -> Self {
        let n = voronoi.len();
        let cells: Vec<Vec<(f64, f64)>> = (0..n).map(|i| voronoi.cell(i)).collect();
        let cell_adj: Vec<Vec<usize>> = (0..n).map(|i| voronoi.neighbors(i)).collect();
        let centroids: Vec<(f64, f64)> = cells.iter().map(|c| centroid(c)).collect();
        // max cell "radius" (over vertices) for the candidate search
        let mut max_r2 = 0.0f64;
        for (i, cell) in cells.iter().enumerate() {
            for &(x, y) in cell {
                let dx = x - centroids[i].0;
                let dy = y - centroids[i].1;
                max_r2 = max_r2.max(dx * dx + dy * dy);
            }
        }
        let max_r = max_r2.sqrt();
        let g = GRID as f64;
        let mut gg_adj: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); n];
        for i in 0..n {
            for m in MAPS {
                let image = affine(&cells[i], m, (0.0, 0.0));
                let (icx, icy) = centroid(&image);
                // image radius
                let ir = image
                    .iter()
                    .map(|&(x, y)| ((x - icx).powi(2) + (y - icy).powi(2)).sqrt())
                    .fold(0.0f64, f64::max);
                let reach = ir + max_r + 2.0;
                // candidates: all cells whose centroid is within reach
                // (mod the torus), tested by exact convex intersection
                // against the candidate polygon unwrapped into the
                // image's frame.
                for (j, &(cjx, cjy)) in centroids.iter().enumerate() {
                    // nearest torus image of candidate centroid
                    let dx = wrap_delta(cjx - icx, g);
                    let dy = wrap_delta(cjy - icy, g);
                    if (dx * dx + dy * dy).sqrt() > reach {
                        continue;
                    }
                    let shift = (icx + dx - cjx, icy + dy - cjy);
                    let cand = affine(&cells[j], [1.0, 0.0, 0.0, 1.0], shift);
                    if convex_intersect(&image, &cand, 1.0)
                        && i != j {
                            gg_adj[i].insert(j);
                            gg_adj[j].insert(i); // continuous edges are undirected
                        }
                }
            }
        }
        GgExpander {
            voronoi,
            gg_adj: gg_adj.into_iter().map(|s| s.into_iter().collect()).collect(),
            cell_adj,
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.gg_adj.len()
    }

    /// True iff no servers.
    pub fn is_empty(&self) -> bool {
        self.gg_adj.is_empty()
    }

    /// The underlying Voronoi diagram.
    pub fn voronoi(&self) -> &TorusVoronoi {
        &self.voronoi
    }

    /// Continuous-graph (Gabber-Galil) adjacency.
    pub fn gg_adjacency(&self) -> &[Vec<usize>] {
        &self.gg_adj
    }

    /// Combined network adjacency: Gabber-Galil edges ∪ Voronoi
    /// (Delaunay) edges — what a deployment's routing tables hold.
    pub fn full_adjacency(&self) -> Vec<Vec<usize>> {
        (0..self.len())
            .map(|i| {
                let mut s: std::collections::BTreeSet<usize> =
                    self.gg_adj[i].iter().copied().collect();
                s.extend(self.cell_adj[i].iter().copied());
                s.remove(&i);
                s.into_iter().collect()
            })
            .collect()
    }

    /// `(max, mean)` degree of the Gabber-Galil edges — Corollary 5.2's
    /// `Θ(ρ)`.
    pub fn degree_stats(&self) -> (usize, f64) {
        let max = self.gg_adj.iter().map(std::vec::Vec::len).max().unwrap_or(0);
        let sum: usize = self.gg_adj.iter().map(std::vec::Vec::len).sum();
        (max, sum as f64 / self.len() as f64)
    }
}

fn wrap_delta(d: f64, period: f64) -> f64 {
    let mut d = d % period;
    if d > period / 2.0 {
        d -= period;
    } else if d < -period / 2.0 {
        d += period;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectral::analyze;
    use cd_core::rng::seeded;
    use rand::Rng;

    fn jittered_lattice(k: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = seeded(seed);
        let mut pts = Vec::new();
        for i in 0..k {
            for j in 0..k {
                let jx: f64 = rng.gen::<f64>() * 0.2 / k as f64;
                let jy: f64 = rng.gen::<f64>() * 0.2 / k as f64;
                pts.push(((i as f64 + 0.5) / k as f64 + jx, (j as f64 + 0.5) / k as f64 + jy));
            }
        }
        pts
    }

    #[test]
    fn smooth_cells_give_constant_degree() {
        // Corollary 5.2: degree Θ(ρ). A shear image of a lattice cell
        // spans a 2-cell-wide parallelogram, so each of the 4 maps
        // overlaps ~6-8 cells: constant, independent of n.
        let small = GgExpander::build(&jittered_lattice(8, 1));
        let large = GgExpander::build(&jittered_lattice(14, 1));
        let (max_s, mean_s) = small.degree_stats();
        let (max_l, mean_l) = large.degree_stats();
        assert!(max_s <= 36 && max_l <= 36, "max GG degrees {max_s}, {max_l}");
        assert!(mean_s >= 2.0 && mean_l >= 2.0);
        // constant in n: the max degree must not grow with the network
        assert!(
            max_l <= max_s + 6,
            "degree grew with n: {max_s} → {max_l} (not Θ(ρ))"
        );
    }

    #[test]
    fn gg_adjacency_symmetric() {
        let x = GgExpander::build(&jittered_lattice(8, 2));
        for (i, nbrs) in x.gg_adjacency().iter().enumerate() {
            for &j in nbrs {
                assert!(x.gg_adjacency()[j].contains(&i), "asymmetric {i}↔{j}");
            }
        }
    }

    #[test]
    fn discretised_expander_has_constant_gap() {
        // the headline of Section 5: the discretisation of a smooth set
        // is an expander — positive spectral gap, not decaying like a
        // lattice torus graph would.
        let small = GgExpander::build(&jittered_lattice(8, 3));
        let large = GgExpander::build(&jittered_lattice(16, 4));
        let rs = analyze(&small.full_adjacency(), 500, 10);
        let rl = analyze(&large.full_adjacency(), 500, 11);
        assert!(rs.gap > 0.05, "gap {} at n=64", rs.gap);
        assert!(rl.gap > 0.05, "gap {} at n=256", rl.gap);
        // non-decaying within noise
        assert!(rl.gap > rs.gap * 0.4, "gap collapsed: {} → {}", rs.gap, rl.gap);
    }

    #[test]
    fn random_cells_still_expand_with_higher_degree() {
        let mut rng = seeded(5);
        let pts: Vec<(f64, f64)> = (0..150).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
        let x = GgExpander::build(&pts);
        let (max, _) = x.degree_stats();
        // random sets have ρ = ω(1): degrees grow but stay moderate
        assert!((4..=80).contains(&max), "max degree {max}");
        let r = analyze(&x.full_adjacency(), 500, 12);
        assert!(r.gap > 0.02, "gap {}", r.gap);
    }
}
