//! Expansion verification: spectral gap and sweep-cut conductance.
//!
//! For an undirected graph with adjacency lists, we estimate the second
//! eigenvalue of the normalized adjacency `M = D^{-1/2} A D^{-1/2}` by
//! power iteration on `(M + I)/2` with deflation of the trivial
//! eigenvector `D^{1/2}·1`. The *spectral gap* `1 − λ₂(M)` certifies
//! edge expansion via Cheeger: `gap/2 ≤ φ(G) ≤ √(2·gap)`; the sweep cut
//! over the iterated vector produces an explicit low-conductance cut
//! witnessing the upper bound.

use cd_core::rng::seeded;
use rand::Rng;

/// Result of the spectral analysis.
#[derive(Clone, Copy, Debug)]
pub struct SpectralReport {
    /// Estimated `λ₂` of the normalized adjacency (≤ 1).
    pub lambda2: f64,
    /// Spectral gap `1 − λ₂`.
    pub gap: f64,
    /// Minimum conductance over sweep cuts of the Fiedler-like vector
    /// (an upper bound for the graph's conductance).
    pub sweep_conductance: f64,
    /// Cheeger lower bound `gap / 2` for the conductance.
    pub cheeger_lower: f64,
}

/// Analyze an undirected graph. `adj` must be symmetric with min
/// degree ≥ 1 (parallel edges allowed; self-loops ignored).
pub fn analyze(adj: &[Vec<usize>], iters: usize, seed: u64) -> SpectralReport {
    let n = adj.len();
    assert!(n >= 2, "need at least two vertices");
    let deg: Vec<f64> = adj.iter().map(|a| a.len() as f64).collect();
    assert!(deg.iter().all(|&d| d >= 1.0), "isolated vertex");
    // trivial eigenvector v1 ∝ D^{1/2}·1
    let mut v1: Vec<f64> = deg.iter().map(|d| d.sqrt()).collect();
    normalize(&mut v1);
    // start vector: random, deflated
    let mut rng = seeded(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    deflate(&mut x, &v1);
    normalize(&mut x);
    let mut lambda_shifted = 0.0f64;
    for _ in 0..iters {
        // y = (M + I)/2 · x, with M = D^{-1/2} A D^{-1/2}
        let mut y = vec![0.0f64; n];
        for (u, nbrs) in adj.iter().enumerate() {
            let du = deg[u].sqrt();
            for &v in nbrs {
                if v == u {
                    continue;
                }
                y[v] += x[u] / (du * deg[v].sqrt());
            }
        }
        for u in 0..n {
            y[u] = (y[u] + x[u]) / 2.0;
        }
        deflate(&mut y, &v1);
        let norm = normalize(&mut y);
        lambda_shifted = norm; // ‖(M+I)/2 · x‖ → |ν₂| for unit x
        x = y;
    }
    // Rayleigh quotient for the final vector (signed, more accurate)
    let lambda2 = 2.0 * rayleigh(adj, &deg, &x) - 1.0;
    let _ = lambda_shifted;
    let gap = 1.0 - lambda2;
    let sweep = sweep_conductance(adj, &deg, &x);
    SpectralReport { lambda2, gap, sweep_conductance: sweep, cheeger_lower: gap / 2.0 }
}

fn rayleigh(adj: &[Vec<usize>], deg: &[f64], x: &[f64]) -> f64 {
    // xᵀ (M+I)/2 x for unit x
    let mut acc = 0.0;
    for (u, nbrs) in adj.iter().enumerate() {
        let du = deg[u].sqrt();
        for &v in nbrs {
            if v == u {
                continue;
            }
            acc += x[u] * x[v] / (du * deg[v].sqrt());
        }
    }
    let m = acc; // xᵀMx
    (m + 1.0) / 2.0
}

fn deflate(x: &mut [f64], v1: &[f64]) {
    let dot: f64 = x.iter().zip(v1).map(|(a, b)| a * b).sum();
    for (xi, vi) in x.iter_mut().zip(v1) {
        *xi -= dot * vi;
    }
}

fn normalize(x: &mut [f64]) -> f64 {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
    norm
}

/// Minimum conductance over the sweep cuts of `x/√deg` ordering.
pub fn sweep_conductance(adj: &[Vec<usize>], deg: &[f64], x: &[f64]) -> f64 {
    let n = adj.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let fa = x[a] / deg[a].sqrt();
        let fb = x[b] / deg[b].sqrt();
        fa.partial_cmp(&fb).expect("no NaN in eigenvector")
    });
    let total_vol: f64 = deg.iter().sum();
    let mut in_set = vec![false; n];
    let mut vol = 0.0f64;
    let mut cut = 0.0f64;
    let mut best = f64::INFINITY;
    for (k, &u) in order.iter().enumerate() {
        in_set[u] = true;
        vol += deg[u];
        let mut internal = 0.0;
        for &v in &adj[u] {
            if v != u && in_set[v] {
                internal += 1.0;
            }
        }
        cut += deg[u] - 2.0 * internal;
        if k + 1 < n {
            let denom = vol.min(total_vol - vol);
            if denom > 0.0 {
                best = best.min(cut / denom);
            }
        }
    }
    best
}

/// Edge expansion of random vertex subsets of size ≤ n/2 — a cheap
/// Monte-Carlo floor check used by the experiments alongside the
/// spectral certificate.
pub fn sampled_vertex_expansion(adj: &[Vec<usize>], trials: usize, seed: u64) -> f64 {
    let n = adj.len();
    let mut rng = seeded(seed);
    let mut worst = f64::INFINITY;
    for _ in 0..trials {
        let k = rng.gen_range(1..=n / 2);
        let mut in_set = vec![false; n];
        let mut chosen = 0usize;
        while chosen < k {
            let v = rng.gen_range(0..n);
            if !in_set[v] {
                in_set[v] = true;
                chosen += 1;
            }
        }
        let mut boundary = std::collections::HashSet::new();
        for u in 0..n {
            if !in_set[u] {
                continue;
            }
            for &v in &adj[u] {
                if !in_set[v] {
                    boundary.insert(v);
                }
            }
        }
        worst = worst.min(boundary.len() as f64 / k as f64);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect()
    }

    fn complete(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| (0..n).filter(|&j| j != i).collect()).collect()
    }

    #[test]
    fn complete_graph_has_big_gap() {
        // K_n: λ₂(M) = −1/(n−1) ⇒ gap ≈ 1 + 1/(n−1)
        let r = analyze(&complete(16), 200, 1);
        assert!(r.gap > 0.9, "gap {}", r.gap);
        assert!(r.sweep_conductance > 0.4);
    }

    #[test]
    fn cycle_has_vanishing_gap() {
        // C_n: λ₂ = cos(2π/n) ⇒ gap ≈ 2π²/n²
        let r32 = analyze(&cycle(32), 600, 2);
        let r64 = analyze(&cycle(64), 1200, 3);
        assert!(r32.gap < 0.1, "gap {}", r32.gap);
        assert!(r64.gap < r32.gap, "gap must shrink with n");
        // sweep cut finds the obvious bisection: conductance ≈ 2/n
        assert!(r64.sweep_conductance < 0.1);
    }

    #[test]
    fn gap_matches_cycle_closed_form() {
        let n = 24usize;
        let r = analyze(&cycle(n), 3000, 4);
        let expect = 1.0 - (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!(
            (r.gap - expect).abs() < 0.02,
            "gap {} vs closed form {expect}",
            r.gap
        );
    }

    #[test]
    fn two_cliques_with_bridge_have_low_conductance() {
        // two K_8 joined by one edge: sweep must find the bridge
        let mut adj = vec![Vec::new(); 16];
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    adj[i].push(j);
                    adj[8 + i].push(8 + j);
                }
            }
        }
        adj[0].push(8);
        adj[8].push(0);
        let r = analyze(&adj, 500, 5);
        assert!(r.sweep_conductance < 0.03, "sweep {}", r.sweep_conductance);
        assert!(r.gap < 0.1);
    }

    #[test]
    fn cheeger_sandwich_holds() {
        for (adj, seed) in [(complete(12), 7u64), (cycle(40), 8u64)] {
            let r = analyze(&adj, 800, seed);
            assert!(
                r.cheeger_lower <= r.sweep_conductance + 1e-6,
                "lower {} > witness {}",
                r.cheeger_lower,
                r.sweep_conductance
            );
            assert!(r.sweep_conductance <= (2.0 * r.gap).sqrt() + 0.05);
        }
    }

    #[test]
    fn sampled_expansion_positive_for_complete_graph() {
        let e = sampled_vertex_expansion(&complete(20), 50, 9);
        assert!(e >= 1.0, "complete graph expands every set");
    }
}
