//! CAN (Ratnasamy et al., SIGCOMM 2001): a `d`-dimensional torus
//! divided into zones; a joining node splits a random zone in half
//! (dimensions in round-robin). Neighbors share a (d−1)-face; routing
//! greedily decreases torus distance to the target point.
//! Path `O(d·n^(1/d))`, linkage `O(d)` — Table 1's CAN row.
//!
//! Zones are dyadic boxes stored in exact `u32` fixed point (splits
//! halve sides), so adjacency is exact integer arithmetic.

use crate::scheme::LookupScheme;
use cd_core::rng::splitmix64;
use rand::Rng;

const ONE: u64 = 1 << 32; // torus side in fixed-point units

/// A dyadic zone: per-dimension origin and side length (`u64`
/// fractions of `2^32`).
#[derive(Clone, Debug)]
struct Zone {
    lo: Vec<u64>,
    side: Vec<u64>,
}

impl Zone {
    fn contains(&self, p: &[u64]) -> bool {
        self.lo
            .iter()
            .zip(&self.side)
            .zip(p)
            .all(|((&lo, &s), &x)| (x.wrapping_sub(lo) % ONE) < s)
    }

    /// Do zones share a (d−1)-face on the torus?
    fn face_adjacent(&self, other: &Zone) -> bool {
        let d = self.lo.len();
        let mut touching_dims = 0usize;
        for k in 0..d {
            let (a0, a1) = (self.lo[k], (self.lo[k] + self.side[k]) % ONE);
            let (b0, b1) = (other.lo[k], (other.lo[k] + other.side[k]) % ONE);
            let touches = a1 == b0 || b1 == a0;
            // overlap test on the circle of circumference ONE
            let overlaps = {
                let off = b0.wrapping_sub(a0) % ONE;
                off < self.side[k] || a0.wrapping_sub(b0) % ONE < other.side[k]
            };
            if overlaps {
                continue;
            } else if touches {
                touching_dims += 1;
            } else {
                return false; // separated in this dimension
            }
        }
        touching_dims == 1
    }

    /// Torus distance from the zone to a point (0 if inside): sum over
    /// dims of the distance to the interval.
    fn dist(&self, p: &[u64]) -> u64 {
        self.lo
            .iter()
            .zip(&self.side)
            .zip(p)
            .map(|((&lo, &s), &x)| {
                let off = x.wrapping_sub(lo) % ONE;
                if off < s {
                    0
                } else {
                    // distance forward to lo or backward to lo+s
                    let fwd = ONE - off;
                    let bwd = off - s;
                    fwd.min(bwd)
                }
            })
            .sum()
    }
}

/// A CAN network.
pub struct Can {
    d: usize,
    zones: Vec<Zone>,
    neighbors: Vec<Vec<usize>>,
}

impl Can {
    /// Build with `n` nodes in `d` dimensions by the standard join
    /// process: each node splits the zone containing a random point.
    pub fn new(n: usize, d: usize, rng: &mut impl Rng) -> Self {
        assert!(d >= 1 && n >= 1);
        let mut zones = vec![Zone { lo: vec![0; d], side: vec![ONE; d] }];
        let mut split_dim = vec![0usize; 1];
        while zones.len() < n {
            let p: Vec<u64> = (0..d).map(|_| rng.gen::<u64>() % ONE).collect();
            let zi = zones.iter().position(|z| z.contains(&p)).expect("zones tile");
            let k = split_dim[zi];
            if zones[zi].side[k] <= 1 {
                continue; // cannot split further (astronomically unlikely)
            }
            let mut new_zone = zones[zi].clone();
            let half = zones[zi].side[k] / 2;
            zones[zi].side[k] = half;
            new_zone.lo[k] = (new_zone.lo[k] + half) % ONE;
            new_zone.side[k] -= half;
            split_dim[zi] = (k + 1) % d;
            zones.push(new_zone);
            split_dim.push((k + 1) % d);
        }
        let neighbors = (0..zones.len())
            .map(|i| {
                (0..zones.len())
                    .filter(|&j| j != i && zones[i].face_adjacent(&zones[j]))
                    .collect()
            })
            .collect();
        Can { d, zones, neighbors }
    }

    /// Map a key to a torus point.
    fn key_point(&self, key: u64) -> Vec<u64> {
        (0..self.d).map(|k| splitmix64(key ^ (k as u64).wrapping_mul(0x9E37)) % ONE).collect()
    }
}

impl LookupScheme for Can {
    fn name(&self) -> String {
        format!("CAN (d={})", self.d)
    }

    fn len(&self) -> usize {
        self.zones.len()
    }

    fn degree_of(&self, node: usize) -> usize {
        self.neighbors[node].len()
    }

    fn route(&self, from: usize, key: u64, rng: &mut rand::rngs::StdRng) -> Vec<usize> {
        let target = self.key_point(key);
        let mut cur = from;
        let mut path = vec![from];
        let mut guard = 0usize;
        while !self.zones[cur].contains(&target) {
            let cur_dist = self.zones[cur].dist(&target);
            // greedy: any neighbor strictly closer; break ties randomly
            let mut best: Vec<usize> = Vec::new();
            let mut best_dist = cur_dist;
            for &nb in &self.neighbors[cur] {
                let d = self.zones[nb].dist(&target);
                match d.cmp(&best_dist) {
                    std::cmp::Ordering::Less => {
                        best_dist = d;
                        best = vec![nb];
                    }
                    std::cmp::Ordering::Equal => best.push(nb),
                    std::cmp::Ordering::Greater => {}
                }
            }
            assert!(
                !best.is_empty(),
                "CAN greedy stuck: no neighbor at distance ≤ {cur_dist}"
            );
            cur = best[rng.gen_range(0..best.len())];
            path.push(cur);
            guard += 1;
            assert!(guard <= 4 * self.zones.len(), "CAN routing loop");
        }
        path
    }

    fn owner_of(&self, key: u64) -> usize {
        let p = self.key_point(key);
        self.zones.iter().position(|z| z.contains(&p)).expect("zones tile the torus")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::measure;
    use cd_core::rng::seeded;

    #[test]
    fn zones_tile_the_torus() {
        let mut rng = seeded(1);
        let can = Can::new(100, 2, &mut rng);
        let total: f64 = can
            .zones
            .iter()
            .map(|z| z.side.iter().map(|&s| s as f64 / ONE as f64).product::<f64>())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "zone volumes sum to {total}");
        // every random point lands in exactly one zone
        for _ in 0..200 {
            let p: Vec<u64> = (0..2).map(|_| rng.gen::<u64>() % ONE).collect();
            let owners = can.zones.iter().filter(|z| z.contains(&p)).count();
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn routes_reach_owner() {
        let mut rng = seeded(2);
        let can = Can::new(128, 2, &mut rng);
        for _ in 0..200 {
            let from = rng.gen_range(0..can.len());
            let key: u64 = rng.gen();
            let path = can.route(from, key, &mut rng);
            assert_eq!(*path.last().expect("nonempty"), can.owner_of(key));
        }
    }

    #[test]
    fn path_scales_as_sqrt_n_for_d2() {
        let mut rng = seeded(3);
        let small = Can::new(64, 2, &mut rng);
        let large = Can::new(1024, 2, &mut rng);
        let rs = measure(&small, 800, 4);
        let rl = measure(&large, 800, 5);
        // d·n^(1/d): ×4 nodes ⇒ ×2 mean path (±noise)
        let ratio = rl.path.mean / rs.path.mean;
        assert!(
            ratio > 2.0 && ratio < 8.0,
            "path growth {ratio} inconsistent with √n (means {} → {})",
            rs.path.mean,
            rl.path.mean
        );
    }

    #[test]
    fn linkage_is_constant_ish() {
        let mut rng = seeded(6);
        let can = Can::new(512, 2, &mut rng);
        let r = measure(&can, 400, 7);
        assert!(r.mean_degree >= 3.0 && r.mean_degree <= 10.0, "mean degree {}", r.mean_degree);
    }

    #[test]
    fn higher_dimension_shortens_paths() {
        let mut rng = seeded(8);
        let c2 = Can::new(512, 2, &mut rng);
        let c4 = Can::new(512, 4, &mut rng);
        let r2 = measure(&c2, 600, 9);
        let r4 = measure(&c4, 600, 10);
        assert!(
            r4.path.mean < r2.path.mean,
            "d=4 mean {} should beat d=2 mean {}",
            r4.path.mean,
            r2.path.mean
        );
    }
}
