//! Plaxton-style prefix routing (the mechanism underlying Tapestry and
//! Pastry): identifiers are strings of base-2^b digits; a node's
//! routing table holds, for every prefix length `ℓ` it shares with a
//! key and every next digit `d`, some node matching `prefix‖d`. Each
//! hop fixes one more digit, so paths take `O(log_{2^b} n)` hops with
//! `O(2^b · log_{2^b} n)` linkage — Table 1's Tapestry row.
//!
//! Keys without an exact match use *surrogate routing* (Tapestry's
//! rule): at a missing entry, deterministically take the next existing
//! digit at that level, which routes every key to a unique owner.

use crate::scheme::LookupScheme;
use rand::Rng;

const B: u32 = 4; // digit width: hexadecimal digits
const DIGITS: usize = (64 / B) as usize;
const RADIX: usize = 1 << B;

/// A Plaxton/Tapestry-style prefix-routing network.
pub struct Plaxton {
    /// Sorted node identifiers.
    ids: Vec<u64>,
    /// `table[v][ℓ][d]`: node matching `prefix_ℓ(ids[v]) ‖ d`, if any.
    table: Vec<Vec<[Option<u32>; RADIX]>>,
}

fn digit(id: u64, level: usize) -> usize {
    ((id >> (64 - B as usize * (level + 1))) & (RADIX as u64 - 1)) as usize
}

impl Plaxton {
    /// Build with `n` random identifiers.
    pub fn new(n: usize, rng: &mut impl Rng) -> Self {
        let mut ids: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        ids.sort_unstable();
        ids.dedup();
        while ids.len() < n {
            ids.push(rng.gen());
            ids.sort_unstable();
            ids.dedup();
        }
        let mut table = Vec::with_capacity(n);
        for v in 0..n {
            let mut levels = Vec::with_capacity(DIGITS);
            for l in 0..DIGITS {
                let mut row: [Option<u32>; RADIX] = [None; RADIX];
                // nodes sharing an l-digit prefix with v form a
                // contiguous id range; scan it once
                let shift = 64 - B as usize * l;
                let (lo, hi) = if l == 0 {
                    (0usize, n)
                } else {
                    let prefix = ids[v] >> shift;
                    let lo = ids.partition_point(|&x| (x >> shift) < prefix);
                    let hi = ids.partition_point(|&x| (x >> shift) <= prefix);
                    (lo, hi)
                };
                for (i, &id) in ids[lo..hi].iter().enumerate() {
                    let d = digit(id, l);
                    // keep the first (deterministic) representative
                    if row[d].is_none() {
                        row[d] = Some((lo + i) as u32);
                    }
                }
                levels.push(row);
                if hi - lo == 1 {
                    break; // v is alone at this prefix depth
                }
            }
            table.push(levels);
        }
        Plaxton { ids, table }
    }

    /// Surrogate digit choice: the next existing digit ≥ `want`
    /// (cyclically) at this level of `v`'s table.
    fn surrogate(&self, v: usize, level: usize, want: usize) -> Option<u32> {
        let row = self.table[v].get(level)?;
        (0..RADIX).map(|k| (want + k) % RADIX).find_map(|d| row[d])
    }
}

impl LookupScheme for Plaxton {
    fn name(&self) -> String {
        "Tapestry/Plaxton".into()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn degree_of(&self, node: usize) -> usize {
        self.table[node]
            .iter()
            .flatten()
            .flatten()
            .filter(|&&e| e as usize != node)
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    fn route(&self, from: usize, key: u64, _rng: &mut rand::rngs::StdRng) -> Vec<usize> {
        let mut path = vec![from];
        let mut cur = from;
        for level in 0..DIGITS {
            let want = digit(key, level);
            let Some(next) = self.surrogate(cur, level, want) else {
                break; // cur is the unique node at this prefix depth
            };
            if next as usize != cur {
                path.push(next as usize);
                cur = next as usize;
            }
            // if cur's digit differs from the key's at this level, the
            // surrogate has deterministically resolved it; continue
        }
        path
    }

    fn owner_of(&self, key: u64) -> usize {
        // the owner is wherever surrogate routing deterministically
        // lands; routing is independent of the start node because each
        // level's surrogate choice depends only on the shared prefix
        let mut rng = cd_core::rng::seeded(0);
        *self.route(0, key, &mut rng).last().expect("route never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::measure;
    use cd_core::rng::seeded;

    #[test]
    fn routing_is_start_independent() {
        let mut rng = seeded(1);
        let p = Plaxton::new(300, &mut rng);
        for _ in 0..100 {
            let key: u64 = rng.gen();
            let a = *p.route(0, key, &mut rng).last().expect("nonempty");
            let from = rng.gen_range(0..300);
            let b = *p.route(from, key, &mut rng).last().expect("nonempty");
            assert_eq!(a, b, "owner depends on the start");
        }
    }

    #[test]
    fn own_id_routes_to_self() {
        let mut rng = seeded(2);
        let p = Plaxton::new(100, &mut rng);
        for v in 0..100 {
            assert_eq!(p.owner_of(p.ids[v]), v);
        }
    }

    #[test]
    fn path_is_log_base_16() {
        let mut rng = seeded(3);
        let n = 1024usize;
        let p = Plaxton::new(n, &mut rng);
        let r = measure(&p, 1500, 4);
        // log₁₆ 1024 = 2.5; each hop fixes ≥ 1 digit ⇒ mean ≈ 2-4
        assert!(r.path.mean <= 5.0, "mean path {}", r.path.mean);
        assert!(r.path.max <= 8.0, "max path {}", r.path.max);
    }

    #[test]
    fn linkage_is_radix_times_levels() {
        let mut rng = seeded(5);
        let n = 1024usize;
        let p = Plaxton::new(n, &mut rng);
        let r = measure(&p, 300, 6);
        // ≈ (2^b − 1)·log_{2^b} n = 15 · 2.5 ≈ 38
        assert!(r.max_degree >= 15 && r.max_degree <= 90, "max degree {}", r.max_degree);
    }
}
