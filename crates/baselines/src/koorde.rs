//! Koorde (Kaashoek-Karger, IPTPS 2003): the *direct* De Bruijn
//! emulation the paper contrasts with its continuous-discrete one
//! (§1.1 credits \[18\] and notes such constructions have `O(log n)`
//! *maximum* degree despite constant average degree — ablation A2).
//!
//! Each node `m` keeps its ring successor and a De Bruijn pointer to
//! `predecessor(2m)`. Lookups walk an *imaginary* De Bruijn node `i`,
//! shifting in the bits of the key; real hops go to the predecessor of
//! the imaginary position, plus successor hops to close the gap.

use crate::scheme::LookupScheme;
use rand::Rng;

/// A Koorde ring.
pub struct Koorde {
    /// Sorted node identifiers.
    ids: Vec<u64>,
    /// De Bruijn finger: `pred(2·id)` per node.
    debruijn: Vec<usize>,
}

impl Koorde {
    /// Build with `n` random identifiers.
    pub fn new(n: usize, rng: &mut impl Rng) -> Self {
        let mut ids: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        ids.sort_unstable();
        ids.dedup();
        while ids.len() < n {
            ids.push(rng.gen());
            ids.sort_unstable();
            ids.dedup();
        }
        let debruijn = (0..n).map(|v| Self::pred_index(&ids, ids[v].wrapping_mul(2))).collect();
        Koorde { ids, debruijn }
    }

    /// Index of the last node at or before `key` (wrapping):
    /// Koorde's `predecessor`.
    fn pred_index(ids: &[u64], key: u64) -> usize {
        match ids.binary_search(&key) {
            Ok(i) => i,
            Err(0) => ids.len() - 1,
            Err(i) => i - 1,
        }
    }

    /// In-degree of each node (how many De Bruijn fingers point at it)
    /// — the quantity that grows to `Θ(log n)` under random ids, the
    /// A2 ablation's measurement.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut indeg = vec![0usize; self.ids.len()];
        for &d in &self.debruijn {
            indeg[d] += 1;
        }
        // ring links also contribute symmetric in-edges (1 each)
        for v in indeg.iter_mut() {
            *v += 1;
        }
        indeg
    }
}

impl LookupScheme for Koorde {
    fn name(&self) -> String {
        "Koorde (direct De Bruijn)".into()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn degree_of(&self, node: usize) -> usize {
        // successor + De Bruijn finger
        if self.debruijn[node] == (node + 1) % self.ids.len() {
            2
        } else {
            3 // succ, pred-awareness, finger (constant either way)
        }
    }

    fn route(&self, from: usize, key: u64, _rng: &mut rand::rngs::StdRng) -> Vec<usize> {
        let n = self.ids.len();
        let owner = self.owner_of(key);
        let mut path = vec![from];
        let mut cur = from;
        // Koorde's O(log n) refinement: start the imaginary node just
        // ahead of the current node with the *low* bits pre-loaded with
        // k's prefix; after exactly `b` shifts the imaginary node
        // equals k (the pre-load bits shift off the top, k's remaining
        // bits shift in at the bottom).
        let b = (n as f64).log2().ceil() as u32 + 2;
        let low = 1u64 << (64 - b);
        let mut i = (self.ids[cur] & !(low - 1)) | (key >> b);
        if i.wrapping_sub(self.ids[cur]) >= low {
            i = i.wrapping_add(low); // keep the imaginary node ahead of us
        }
        let mut kshift = key << (64 - b); // continuation bits, top-first
        let mut remaining = b;
        let mut guard = 0usize;
        while cur != owner {
            guard += 1;
            assert!(guard <= 4 * n + 256, "Koorde routing loop");
            let succ = (cur + 1) % n;
            // does cur own the imaginary node? (cells are [id, next))
            let i_here = i.wrapping_sub(self.ids[cur]) < self.ids[succ].wrapping_sub(self.ids[cur]);
            if remaining > 0 && i_here {
                // shift in the next key bit; hop the De Bruijn finger
                let bit = kshift >> 63;
                i = (i << 1) | bit;
                kshift <<= 1;
                remaining -= 1;
                let next = self.debruijn[cur];
                if next != cur {
                    path.push(next);
                    cur = next;
                }
            } else {
                // ring-correct toward the imaginary position (after the
                // final shift i == key, so this finishes at the owner)
                path.push(succ);
                cur = succ;
            }
        }
        path
    }

    fn owner_of(&self, key: u64) -> usize {
        Self::pred_index(&self.ids, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::measure;
    use cd_core::rng::seeded;

    #[test]
    fn routes_reach_owner() {
        let mut rng = seeded(1);
        let k = Koorde::new(256, &mut rng);
        for _ in 0..200 {
            let from = rng.gen_range(0..256);
            let key: u64 = rng.gen();
            let p = k.route(from, key, &mut rng);
            assert_eq!(*p.last().expect("nonempty"), k.owner_of(key));
        }
    }

    #[test]
    fn out_degree_is_constant() {
        let mut rng = seeded(2);
        let k = Koorde::new(512, &mut rng);
        assert!((0..512).all(|v| k.degree_of(v) <= 3));
    }

    #[test]
    fn paths_are_logarithmic() {
        let mut rng = seeded(3);
        let n = 1024usize;
        let k = Koorde::new(n, &mut rng);
        let r = measure(&k, 1000, 4);
        let logn = (n as f64).log2();
        assert!(
            r.path.mean <= 6.0 * logn,
            "mean path {} ≫ log n = {logn}",
            r.path.mean
        );
    }

    #[test]
    fn ablation_a2_indegree_grows_with_n() {
        // direct emulation: max in-degree Θ(log n); the paper's §1.1
        // contrast with the continuous-discrete bound of Θ(ρ).
        let mut rng = seeded(5);
        let small = Koorde::new(256, &mut rng);
        let large = Koorde::new(8192, &mut rng);
        let max_s = *small.in_degrees().iter().max().expect("nonempty");
        let max_l = *large.in_degrees().iter().max().expect("nonempty");
        assert!(
            max_l > max_s,
            "in-degree should grow with n ({max_s} → {max_l})"
        );
        assert!(max_l >= 8, "max in-degree {max_l} suspiciously small at n = 8192");
    }
}
