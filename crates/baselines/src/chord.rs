//! Chord (Stoica et al., SIGCOMM 2001): nodes on a `u64` identifier
//! ring, each owning the arc from its predecessor (successor-owner
//! rule); finger `j` points to the first node at or after
//! `id + 2^j`. Greedy routing forwards to the closest preceding
//! finger. Path `O(log n)`, linkage `O(log n)` — the first row of
//! Table 1.

use crate::scheme::LookupScheme;
use rand::Rng;

/// A Chord ring.
pub struct Chord {
    /// Sorted node identifiers.
    ids: Vec<u64>,
    /// `fingers[v][j]` = node index owning `ids[v] + 2^j`.
    fingers: Vec<Vec<usize>>,
}

impl Chord {
    /// Build a ring of `n` nodes with random identifiers.
    pub fn new(n: usize, rng: &mut impl Rng) -> Self {
        let mut ids: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        ids.sort_unstable();
        ids.dedup();
        while ids.len() < n {
            ids.push(rng.gen());
            ids.sort_unstable();
            ids.dedup();
        }
        let mut fingers = Vec::with_capacity(n);
        for v in 0..n {
            let mut table: Vec<usize> = (0..64)
                .map(|j| Self::successor_index(&ids, ids[v].wrapping_add(1u64 << j)))
                .collect();
            table.dedup();
            fingers.push(table);
        }
        Chord { ids, fingers }
    }

    /// First node at or after `key` (wrapping): Chord's successor.
    fn successor_index(ids: &[u64], key: u64) -> usize {
        match ids.binary_search(&key) {
            Ok(i) => i,
            Err(i) if i == ids.len() => 0,
            Err(i) => i,
        }
    }

    /// Does `x` lie in the half-open ring interval `(a, b]`?
    fn in_range(a: u64, b: u64, x: u64) -> bool {
        x.wrapping_sub(a).wrapping_sub(1) < b.wrapping_sub(a)
    }
}

impl LookupScheme for Chord {
    fn name(&self) -> String {
        "Chord".into()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn degree_of(&self, node: usize) -> usize {
        // distinct fingers (successor is finger 0)
        let mut f = self.fingers[node].clone();
        f.sort_unstable();
        f.dedup();
        f.len()
    }

    fn route(&self, from: usize, key: u64, _rng: &mut rand::rngs::StdRng) -> Vec<usize> {
        let owner = self.owner_of(key);
        let mut cur = from;
        let mut path = vec![from];
        while cur != owner {
            // if the owner is our direct successor, take it
            let succ = Self::successor_index(&self.ids, self.ids[cur].wrapping_add(1));
            if Self::in_range(self.ids[cur], self.ids[succ], key) {
                path.push(succ);
                cur = succ;
                continue;
            }
            // closest preceding finger: the finger furthest along the
            // ring that does not overshoot the key
            let mut best = succ;
            let mut best_off = self.ids[succ].wrapping_sub(self.ids[cur]);
            for &f in &self.fingers[cur] {
                if f == cur {
                    continue;
                }
                let off = self.ids[f].wrapping_sub(self.ids[cur]);
                // strictly before the key (key offset from cur)
                let key_off = key.wrapping_sub(self.ids[cur]);
                if off < key_off && off > best_off {
                    best = f;
                    best_off = off;
                }
            }
            assert_ne!(best, cur, "routing made no progress");
            path.push(best);
            cur = best;
            assert!(path.len() <= self.ids.len() + 2, "routing loop");
        }
        path
    }

    fn owner_of(&self, key: u64) -> usize {
        Self::successor_index(&self.ids, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::measure;
    use cd_core::rng::seeded;

    #[test]
    fn routes_reach_owner() {
        let mut rng = seeded(1);
        let c = Chord::new(200, &mut rng);
        for _ in 0..300 {
            let from = rng.gen_range(0..200);
            let key: u64 = rng.gen();
            let path = c.route(from, key, &mut rng);
            assert_eq!(*path.last().expect("nonempty"), c.owner_of(key));
        }
    }

    #[test]
    fn path_length_is_logarithmic() {
        let mut rng = seeded(2);
        let n = 1024usize;
        let c = Chord::new(n, &mut rng);
        let r = measure(&c, 2000, 3);
        let logn = (n as f64).log2();
        assert!(r.path.mean <= logn, "mean path {} > log n", r.path.mean);
        assert!(r.path.max <= 3.0 * logn, "max path {}", r.path.max);
    }

    #[test]
    fn linkage_is_logarithmic() {
        let mut rng = seeded(3);
        let n = 1024usize;
        let c = Chord::new(n, &mut rng);
        let logn = (n as f64).log2();
        let max_deg = (0..n).map(|v| c.degree_of(v)).max().expect("nonempty");
        assert!((max_deg as f64) >= logn / 2.0);
        assert!((max_deg as f64) <= 4.0 * logn);
    }

    #[test]
    fn owner_is_successor() {
        let mut rng = seeded(4);
        let c = Chord::new(10, &mut rng);
        // a key equal to a node id is owned by that node
        let v = 3usize;
        assert_eq!(c.owner_of(c.ids[v]), v);
        // a key just after a node is owned by the next node
        assert_eq!(c.owner_of(c.ids[v].wrapping_add(1)), v + 1);
    }
}
