//! A simplified Viceroy (Malkhi-Naor-Ratajczak, PODC 2002): the
//! constant-linkage butterfly emulation the paper lists in Table 1.
//!
//! Every node draws a position `x ∈ [0,1)` and a level
//! `ℓ ∈ {1..⌈log n⌉}`. Links: ring successor/predecessor; two *down*
//! links from level `ℓ` to the nearest level-`ℓ+1` nodes at `x` and
//! `x + 2^{−ℓ}`; one *up* link to the nearest level-`ℓ−1` node.
//! Routing: climb to level 1, then descend — at level `ℓ` take the
//! far down-link iff the target is ≥ `2^{−ℓ}` ahead — and finish along
//! the ring. `O(log n)` expected hops, `O(1)` linkage.
//!
//! (The full Viceroy join/leave machinery — level re-balancing and
//! the inner level rings — is not needed for Table 1's static
//! measurements; this is the standard simplification and is noted in
//! DESIGN.md.)

use crate::scheme::LookupScheme;
use rand::Rng;

/// A simplified Viceroy network.
pub struct Viceroy {
    /// Sorted positions.
    ids: Vec<u64>,
    /// Level of each node (by sorted index).
    level: Vec<u32>,
    /// Per-level sorted (position, node) lists.
    by_level: Vec<Vec<(u64, usize)>>,
    levels: u32,
}

impl Viceroy {
    /// Build with `n` nodes.
    pub fn new(n: usize, rng: &mut impl Rng) -> Self {
        assert!(n >= 8);
        let levels = (n as f64).log2().ceil() as u32;
        let mut ids: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        ids.sort_unstable();
        ids.dedup();
        while ids.len() < n {
            ids.push(rng.gen());
            ids.sort_unstable();
            ids.dedup();
        }
        let level: Vec<u32> = (0..n).map(|_| rng.gen_range(1..=levels)).collect();
        let mut by_level: Vec<Vec<(u64, usize)>> = vec![Vec::new(); levels as usize + 2];
        for v in 0..n {
            by_level[level[v] as usize].push((ids[v], v));
        }
        for l in &mut by_level {
            l.sort_unstable();
        }
        // levels can be empty at small n; merge empties downward by
        // reassigning any empty level's queries to the nearest
        // non-empty one (handled in `nearest_at_level`)
        Viceroy { ids, level, by_level, levels }
    }

    /// The node at level `l` (or the nearest non-empty level ≤/≥ it)
    /// whose position is closest after `x` (clockwise).
    fn nearest_at_level(&self, l: u32, x: u64) -> usize {
        let mut l = l.clamp(1, self.levels) as usize;
        // fall back to nearby levels if empty
        let mut probe = 0usize;
        while self.by_level[l].is_empty() {
            probe += 1;
            l = if probe.is_multiple_of(2) { l + probe } else { l.saturating_sub(probe) }
                .clamp(1, self.levels as usize);
        }
        let list = &self.by_level[l];
        let i = list.partition_point(|&(p, _)| p < x);
        list[i % list.len()].1
    }

    fn succ(&self, v: usize) -> usize {
        (v + 1) % self.ids.len()
    }

    /// Ring owner of a key: the first node at or after it (successor
    /// convention, like Chord).
    fn ring_owner(&self, key: u64) -> usize {
        match self.ids.binary_search(&key) {
            Ok(i) => i,
            Err(i) if i == self.ids.len() => 0,
            Err(i) => i,
        }
    }
}

impl LookupScheme for Viceroy {
    fn name(&self) -> String {
        "Viceroy (simplified)".into()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn degree_of(&self, node: usize) -> usize {
        // ring (2) + up (1) + down (2): constant
        let l = self.level[node];
        let mut d = 2usize;
        if l > 1 {
            d += 1;
        }
        if l < self.levels {
            d += 2;
        }
        d
    }

    fn route(&self, from: usize, key: u64, _rng: &mut rand::rngs::StdRng) -> Vec<usize> {
        let owner = self.ring_owner(key);
        let mut path = vec![from];
        let mut cur = from;
        // Phase 1: climb to level 1
        while self.level[cur] > 1 {
            let up = self.nearest_at_level(self.level[cur] - 1, self.ids[cur]);
            if up == cur {
                break;
            }
            path.push(up);
            cur = up;
            if path.len() > 4 * self.levels as usize {
                break;
            }
        }
        // Phase 2: butterfly descent over a *virtual* position v —
        // each level halves the remaining distance from v to the key;
        // the physical hop goes to the nearest node of the next level
        // (which may overshoot v slightly, but v keeps the invariant).
        let mut l = self.level[cur];
        let mut v = self.ids[cur];
        while l < self.levels {
            let stride = 1u64 << (64 - l).min(63);
            if key.wrapping_sub(v) >= stride {
                v = v.wrapping_add(stride);
            }
            let down = self.nearest_at_level(l + 1, v);
            if down != cur {
                path.push(down);
                cur = down;
            }
            l += 1;
        }
        // Phase 3: finish along the (bidirectional) ring — the descent
        // lands within O(level spacing) of the key, on either side.
        let mut guard = 0usize;
        while cur != owner {
            let ahead = key.wrapping_sub(self.ids[cur]);
            cur = if ahead < (1 << 63) {
                self.succ(cur)
            } else {
                (cur + self.ids.len() - 1) % self.ids.len()
            };
            path.push(cur);
            guard += 1;
            assert!(guard <= self.ids.len(), "ring walk wrapped");
        }
        path
    }

    fn owner_of(&self, key: u64) -> usize {
        self.ring_owner(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::measure;
    use cd_core::rng::seeded;

    #[test]
    fn routes_reach_owner() {
        let mut rng = seeded(1);
        let v = Viceroy::new(256, &mut rng);
        for _ in 0..200 {
            let from = rng.gen_range(0..256);
            let key: u64 = rng.gen();
            let p = v.route(from, key, &mut rng);
            assert_eq!(*p.last().expect("nonempty"), v.owner_of(key));
        }
    }

    #[test]
    fn linkage_is_constant() {
        let mut rng = seeded(2);
        let v = Viceroy::new(512, &mut rng);
        assert!((0..512).all(|u| v.degree_of(u) <= 5));
    }

    #[test]
    fn paths_are_logarithmic_on_average() {
        let mut rng = seeded(3);
        let n = 1024usize;
        let v = Viceroy::new(n, &mut rng);
        let r = measure(&v, 1200, 4);
        let logn = (n as f64).log2();
        assert!(
            r.path.mean <= 4.0 * logn,
            "mean path {} ≫ log n = {logn}",
            r.path.mean
        );
    }

    #[test]
    fn growth_is_logarithmic() {
        let mut rng = seeded(5);
        let small = Viceroy::new(256, &mut rng);
        let large = Viceroy::new(4096, &mut rng);
        let rs = measure(&small, 800, 6);
        let rl = measure(&large, 800, 7);
        // ×16 nodes ⇒ +4 levels: additive, not multiplicative growth
        assert!(
            rl.path.mean / rs.path.mean < 2.5,
            "path growth {} → {} not logarithmic",
            rs.path.mean,
            rl.path.mean
        );
    }
}
