//! The common measurement interface of all compared lookup schemes.

use cd_core::rng::sub_rng;
use cd_core::stats::Summary;
use rand::Rng;

/// A lookup scheme under measurement. Nodes are integers `0..len()`;
/// keys are uniform `u64` identifiers in the scheme's own key space.
pub trait LookupScheme {
    /// Display name (Table 1 row).
    fn name(&self) -> String;

    /// Number of nodes.
    fn len(&self) -> usize;

    /// True iff the scheme has no nodes (never, in practice).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Out-degree (routing-table size) of a node — the *linkage*.
    fn degree_of(&self, node: usize) -> usize;

    /// Route a lookup for `key` from `from`; returns the node sequence
    /// (`[from, …, owner]`).
    fn route(&self, from: usize, key: u64, rng: &mut rand::rngs::StdRng) -> Vec<usize>;

    /// The node responsible for `key` (ground truth for route checks).
    fn owner_of(&self, key: u64) -> usize;
}

/// Measured Table 1 row for one scheme.
#[derive(Clone, Debug)]
pub struct SchemeReport {
    /// Scheme name.
    pub name: String,
    /// Nodes.
    pub n: usize,
    /// Lookups measured.
    pub lookups: usize,
    /// Path length (hops) summary.
    pub path: Summary,
    /// Max node load normalized by the number of lookups — the
    /// empirical *congestion* (Definition 3).
    pub congestion: f64,
    /// `congestion × n / log₂ n` — ≈ constant for (log n)/n schemes.
    pub congestion_norm: f64,
    /// Max degree (linkage).
    pub max_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
}

/// Run `m` random lookups and assemble the Table 1 row.
pub fn measure(scheme: &dyn LookupScheme, m: usize, seed: u64) -> SchemeReport {
    let n = scheme.len();
    let mut loads = vec![0u64; n];
    let mut lengths = Vec::with_capacity(m);
    for i in 0..m {
        let mut rng = sub_rng(seed, i as u64);
        let from = rng.gen_range(0..n);
        let key: u64 = rng.gen();
        let route = scheme.route(from, key, &mut rng);
        assert_eq!(
            *route.last().expect("route never empty"),
            scheme.owner_of(key),
            "{}: route ended at the wrong owner",
            scheme.name()
        );
        for &v in &route {
            loads[v] += 1;
        }
        lengths.push((route.len() - 1) as u64);
    }
    let max_load = loads.iter().copied().max().unwrap_or(0);
    let congestion = max_load as f64 / m as f64;
    let degrees: Vec<usize> = (0..n).map(|v| scheme.degree_of(v)).collect();
    SchemeReport {
        name: scheme.name(),
        n,
        lookups: m,
        path: Summary::of_u64(lengths),
        congestion,
        congestion_norm: congestion * n as f64 / (n as f64).log2(),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        mean_degree: degrees.iter().sum::<usize>() as f64 / n as f64,
    }
}
