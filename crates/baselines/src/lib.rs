//! # p2p-baselines — the Table 1 comparison schemes
//!
//! Faithful single-process reimplementations of the lookup schemes the
//! paper compares against (Table 1), each exposing the same
//! measurement interface ([`LookupScheme`]) so the `table1` harness
//! can report **path length**, **congestion** and **linkage** for all
//! of them side by side:
//!
//! | scheme | paper row | path | congestion | linkage |
//! |---|---|---|---|---|
//! | [`chord::Chord`] | Chord \[45\] | log n | (log n)/n | log n |
//! | [`plaxton::Plaxton`] | Tapestry \[48\] | log n | (log n)/n | log n |
//! | [`can::Can`] | CAN \[41\] | d·n^(1/d) | d·n^(1/d−1) | d |
//! | [`kleinberg::SmallWorld`] | Small Worlds \[22\] | log² n | (log² n)/n | O(1) |
//! | [`viceroy::Viceroy`] | Viceroy \[29\] | log n | (log n)/n | O(1) |
//! | `dh-dht` (∆ = 2 … √n) | Distance Halving | log_∆ n | (log_∆ n)/n | O(∆) |
//!
//! [`koorde::Koorde`] (direct De Bruijn emulation, Kaashoek-Karger) is
//! included for the ablation the paper draws against \[12\]\[18\]: direct
//! emulations have constant *average* degree but `O(log n)` *maximum*
//! in-degree, where the continuous-discrete construction keeps the
//! maximum constant (given smoothness).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod can;
pub mod chord;
pub mod kleinberg;
pub mod koorde;
pub mod plaxton;
pub mod scheme;
pub mod viceroy;

pub use scheme::{measure, LookupScheme, SchemeReport};
