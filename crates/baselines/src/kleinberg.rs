//! Kleinberg's small-world ring (STOC 2000): successor edges plus one
//! long-range contact per node, sampled with probability proportional
//! to `1/d(u, v)` (the 1-dimensional harmonic distribution — the
//! unique exponent making greedy routing polylogarithmic). Greedy
//! routing achieves `O(log² n)` expected hops with `O(1)` linkage —
//! Table 1's Small Worlds row.

use crate::scheme::LookupScheme;
use rand::Rng;

/// A small-world ring of `n` nodes at positions `0..n` (identifier
/// space = positions scaled to `u64`).
pub struct SmallWorld {
    n: usize,
    /// Long-range contact(s) of each node.
    long: Vec<Vec<usize>>,
    /// Number of long links per node.
    q: usize,
}

impl SmallWorld {
    /// Build with `q` harmonic long links per node.
    pub fn new(n: usize, q: usize, rng: &mut impl Rng) -> Self {
        assert!(n >= 4);
        // harmonic sampling over ring distance 1..n/2
        let half = n / 2;
        let weights: Vec<f64> = (1..=half).map(|d| 1.0 / d as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut long = vec![Vec::new(); n];
        for (u, links) in long.iter_mut().enumerate() {
            for _ in 0..q {
                let mut x = rng.gen::<f64>() * total;
                let mut d = 1usize;
                for (i, w) in weights.iter().enumerate() {
                    if x < *w {
                        d = i + 1;
                        break;
                    }
                    x -= w;
                }
                let dir = rng.gen_bool(0.5);
                let v = if dir { (u + d) % n } else { (u + n - d) % n };
                links.push(v);
            }
        }
        SmallWorld { n, long, q }
    }

    fn ring_dist(&self, a: usize, b: usize) -> usize {
        let d = a.abs_diff(b);
        d.min(self.n - d)
    }
}

impl LookupScheme for SmallWorld {
    fn name(&self) -> String {
        format!("Small-World (q={})", self.q)
    }

    fn len(&self) -> usize {
        self.n
    }

    fn degree_of(&self, node: usize) -> usize {
        2 + self.long[node].len() // ring succ/pred + long links
    }

    fn route(&self, from: usize, key: u64, _rng: &mut rand::rngs::StdRng) -> Vec<usize> {
        let target = self.owner_of(key);
        let mut cur = from;
        let mut path = vec![from];
        while cur != target {
            // greedy over ring neighbors + long contacts
            let mut cands = vec![(cur + 1) % self.n, (cur + self.n - 1) % self.n];
            cands.extend(self.long[cur].iter().copied());
            let next = cands
                .into_iter()
                .min_by_key(|&v| self.ring_dist(v, target))
                .expect("ring neighbors always exist");
            assert!(
                self.ring_dist(next, target) < self.ring_dist(cur, target),
                "greedy made no progress"
            );
            path.push(next);
            cur = next;
        }
        path
    }

    fn owner_of(&self, key: u64) -> usize {
        // keys map uniformly to positions
        ((key as u128 * self.n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::measure;
    use cd_core::rng::seeded;

    #[test]
    fn routes_reach_target() {
        let mut rng = seeded(1);
        let sw = SmallWorld::new(500, 1, &mut rng);
        for _ in 0..200 {
            let from = rng.gen_range(0..500);
            let key: u64 = rng.gen();
            let p = sw.route(from, key, &mut rng);
            assert_eq!(*p.last().expect("nonempty"), sw.owner_of(key));
        }
    }

    #[test]
    fn greedy_is_polylog_not_linear() {
        let mut rng = seeded(2);
        let n = 2048usize;
        let sw = SmallWorld::new(n, 1, &mut rng);
        let r = measure(&sw, 1500, 3);
        let log2n = (n as f64).log2().powi(2);
        // Θ(log² n) ≈ 121 at n=2048; linear would be ~512
        assert!(
            r.path.mean < 0.75 * log2n,
            "mean path {} ≫ log² n = {log2n}",
            r.path.mean
        );
        assert!(r.path.mean > 5.0, "implausibly short paths ({})", r.path.mean);
    }

    #[test]
    fn linkage_is_constant() {
        let mut rng = seeded(4);
        let sw = SmallWorld::new(1000, 1, &mut rng);
        assert!((0..1000).all(|v| sw.degree_of(v) == 3));
    }

    #[test]
    fn path_grows_slower_than_ring() {
        let mut rng = seeded(5);
        let small = SmallWorld::new(256, 1, &mut rng);
        let large = SmallWorld::new(4096, 1, &mut rng);
        let rs = measure(&small, 800, 6);
        let rl = measure(&large, 800, 7);
        // ×16 nodes: ring would grow ×16; log² grows ×(12/8)² = 2.25
        let ratio = rl.path.mean / rs.path.mean;
        assert!(ratio < 5.0, "growth ratio {ratio} looks linear");
    }
}
