//! The §4 claim, measured: the Chord-like instance of the
//! continuous-discrete recipe reproduces classic Chord's routing
//! profile. Both overlays are built over the same identifier draw and
//! answer the same greedy-clockwise workload; their mean path lengths
//! must sit in the same `Θ(log n)` band.

use cd_core::graph::ChordLike;
use cd_core::pointset::PointSet;
use cd_core::rng::seeded;
use cd_core::Point;
use dh_dht::CdNetwork;
use p2p_baselines::chord::Chord;
use p2p_baselines::scheme::LookupScheme;
use rand::Rng;

#[test]
fn cd_chord_matches_classic_chord_routing_profile() {
    let n = 1024usize;
    let m = 400usize;
    let logn = (n as f64).log2();
    let mut rng = seeded(0x04C0);

    // classic Chord over random u64 identifiers
    let classic = Chord::new(n, &mut rng);
    let mut classic_hops = 0usize;
    for i in 0..m {
        let from = i % n;
        let key: u64 = rng.gen();
        let path = classic.route(from, key, &mut rng);
        assert_eq!(*path.last().expect("nonempty"), classic.owner_of(key));
        classic_hops += path.len() - 1;
    }
    let classic_mean = classic_hops as f64 / m as f64;

    // the continuous-discrete instance over its own random draw
    let net = CdNetwork::build(ChordLike, &PointSet::random(n, &mut rng));
    let mut cd_hops = 0usize;
    for _ in 0..m {
        let from = net.random_node(&mut rng);
        let target = Point(rng.gen());
        let route = net.greedy_lookup(from, target);
        assert!(net.node(route.destination()).covers(target));
        cd_hops += route.hops();
    }
    let cd_mean = cd_hops as f64 / m as f64;

    // both sit in the Θ(log n) band (greedy expectation ≈ log₂(n)/2)
    for (name, mean) in [("classic", classic_mean), ("cd", cd_mean)] {
        assert!(
            mean >= 0.25 * logn && mean <= 1.5 * logn,
            "{name} chord mean hops {mean:.2} outside the Θ(log n) band (log₂ n = {logn:.1})"
        );
    }
    let ratio = cd_mean / classic_mean;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "profiles diverge: cd {cd_mean:.2} vs classic {classic_mean:.2} hops"
    );
}
