//! The typed RPC vocabulary of the Distance Halving system.
//!
//! Every message a server can receive is a [`Wire`] variant. Routing
//! messages (`LookupStep` and the routed storage/cache RPCs) carry the
//! op header — op id, attempt and step stamps — so duplicated or
//! reordered deliveries and retransmissions from old attempts are
//! recognised and ignored by the receiving state machine.
//!
//! [`Wire::wire_bytes`] is the byte-accounting model: a fixed header
//! (op id + tag + src/dst + stamps) plus the variant payload. The
//! Distance Halving Lookup's message header carries the digit string
//! `τ` (the paper's phase-2 header, §2.2.2), so its size is charged
//! per digit; `Put` is charged for the payload it carries.

use crate::node::NodeId;
use cd_core::point::Point;

/// Identifies one submitted operation within an engine run.
pub type OpId = u32;

/// Which lookup algorithm a routed message follows. Mirrors
/// `dh_dht::LookupKind` (which lives above this crate); the engine
/// works with this wire-level copy and `dh_dht` converts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteKind {
    /// Fast Lookup (§2.2.1): deterministic shortest paths.
    Fast,
    /// Distance Halving Lookup (§2.2.2): randomized two-phase routing.
    DistanceHalving,
    /// Greedy routing (§4's Chord-like instances): each hop applies the
    /// topology's memoryless [`crate::engine::Topology::greedy_step`].
    Greedy,
}

/// What a routed message does once it reaches the server covering its
/// target point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Pure lookup: report the covering server.
    Locate,
    /// Store an item (`key`, payload of `len` bytes).
    Put {
        /// Item key.
        key: u64,
        /// Payload size in bytes (the engine models cost, the storage
        /// layer holds the actual bytes).
        len: u32,
    },
    /// Retrieve an item.
    Get {
        /// Item key.
        key: u64,
    },
    /// Delete an item.
    Remove {
        /// Item key.
        key: u64,
    },
    /// Serve a cached item on the phase-2 climb (§3.1): the request is
    /// answered by the first server holding an active tree node on the
    /// climb path.
    CacheServe {
        /// Item key.
        item: u64,
    },
    /// Replicated store (§6.2): route to the clique entry, then fan
    /// one [`Wire::StoreShare`] out to each of the `m` covers of
    /// `item`; the op completes once `k` covers acknowledged (write
    /// quorum).
    PutShares {
        /// Item key.
        key: u64,
        /// Per-share payload size in bytes (header included).
        len: u32,
        /// Total number of shares / clique size.
        m: u8,
        /// Reconstruction threshold (write quorum).
        k: u8,
        /// The item's hashed location `h(key)` — the clique is the `m`
        /// consecutive covers starting at the server covering this
        /// point, wherever the routed phase entered it.
        item: Point,
    },
    /// Quorum read (§6.2): route to the clique entry, then fan one
    /// [`Wire::FetchShare`] out per cover; the first `k` found
    /// responses reconstruct, so the op completes at quorum without
    /// waiting for stragglers (or once every cover has answered).
    GetShares {
        /// Item key.
        key: u64,
        /// Total number of shares / clique size.
        m: u8,
        /// Reconstruction threshold (read quorum).
        k: u8,
        /// The item's hashed location `h(key)`.
        item: Point,
    },
}

impl Action {
    /// Is this a replicated (clique fan-out) storage action?
    pub fn is_replicated(&self) -> bool {
        matches!(self, Action::PutShares { .. } | Action::GetShares { .. })
    }
}

/// A typed RPC between two servers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Wire {
    /// One hop of a routed operation. The header stamps (`attempt`,
    /// `step`) let receivers discard duplicates and stale attempts;
    /// `digits` is the length of the carried digit string `τ` (the DH
    /// lookup header; 0 for Fast Lookup).
    LookupStep {
        /// The operation this hop belongs to.
        op: OpId,
        /// Retry attempt number (end-to-end retransmission).
        attempt: u32,
        /// Hop counter within the attempt.
        step: u32,
        /// The continuous point this hop targets.
        at: Point,
        /// Length of the digit string carried in the header.
        digits: u32,
        /// What to do at the destination.
        action: Action,
    },
    /// Ask the server covering `x` to split its segment at `x`
    /// (Algorithm Join step 3).
    JoinSplit {
        /// The joiner's chosen identifier point.
        x: Point,
    },
    /// Hand the sender's segment and items to the ring predecessor
    /// (simple Leave, §2.1).
    LeaveMerge {
        /// Number of stored items migrating with the segment.
        items: u32,
    },
    /// Tell a watcher that the sender's segment changed so its table
    /// entry must be refreshed (steps 4 of Join/Leave).
    NeighborDiff {
        /// Number of table entries the receiver must refresh.
        entries: u32,
    },
    /// Clique fan-out of a replicated put (§6.2): the coordinator
    /// hands cover `idx` its Reed-Solomon share of `key`. Stamped with
    /// the op header so stale attempts are recognised; the holder
    /// answers with [`Wire::ShareAck`].
    StoreShare {
        /// The replicated op this share placement belongs to.
        op: OpId,
        /// Retry attempt number of the op.
        attempt: u32,
        /// Share index within the clique (`0..m`).
        idx: u8,
        /// Item key.
        key: u64,
        /// Share payload size in bytes (header included).
        len: u32,
    },
    /// A cover's acknowledgement that it durably holds share `idx`
    /// of the op's item.
    ShareAck {
        /// The replicated op.
        op: OpId,
        /// Attempt stamp echoed from the [`Wire::StoreShare`].
        attempt: u32,
        /// Acknowledged share index.
        idx: u8,
    },
    /// Clique fan-out of a quorum read (§6.2): ask cover `idx` for its
    /// share of `key`. Answered by [`Wire::ShareReply`].
    FetchShare {
        /// The replicated op.
        op: OpId,
        /// Retry attempt number of the op.
        attempt: u32,
        /// Share index within the clique.
        idx: u8,
        /// Item key.
        key: u64,
        /// Hedge wave: 0 for the initial fan-out, `n` for the `n`-th
        /// backup fetch a hedged read launched past a silent cover.
        /// On the wire it packs into the high nibble of the `idx` byte
        /// (`idx < m ≤ 16`, waves saturate at 15), so it costs no
        /// extra bytes — [`Wire::wire_bytes`] is unchanged.
        wave: u8,
    },
    /// A cover's answer to [`Wire::FetchShare`]: whether it holds the
    /// share and, if so, the share payload (charged by `len`).
    ShareReply {
        /// The replicated op.
        op: OpId,
        /// Attempt stamp echoed from the request.
        attempt: u32,
        /// Share index this reply is about.
        idx: u8,
        /// Item key.
        key: u64,
        /// Does the sender hold the share?
        found: bool,
        /// Share payload size in bytes (0 when `!found`).
        len: u32,
    },
    /// Anti-entropy digest: a compact list of `(key, version)` entries
    /// the sender believes the receiver should hold. Exchanged after
    /// churn shifts cover membership; mismatches trigger
    /// [`Wire::RepairPull`]. Bare protocol message (no op machine).
    ShareDigest {
        /// Number of digest entries carried.
        keys: u32,
    },
    /// Repair: a fresh cover asks a live holder for its share of `key`
    /// so the missing share can be re-materialized from any `k`
    /// holders. Answered by [`Wire::RepairPush`].
    RepairPull {
        /// Item key being repaired.
        key: u64,
        /// Share index the *sender* needs to re-materialize.
        idx: u8,
    },
    /// Repair data transfer: a live holder ships its share of `key`
    /// back to the repairing cover.
    RepairPush {
        /// Item key being repaired.
        key: u64,
        /// Share index of the shipped share.
        idx: u8,
        /// Share payload size in bytes (header included).
        len: u32,
    },
    /// Coalesced repair requests: all the `(key, idx)` pulls one
    /// repairing cover owes a single live holder, shipped as one frame
    /// instead of `keys` separate [`Wire::RepairPull`]s. Saves
    /// `keys - 1` message headers per (cover, holder) pair. Bare
    /// protocol message (no op machine).
    RepairPullBatch {
        /// Number of `(key, idx)` pull entries carried.
        keys: u32,
    },
    /// Coalesced repair data transfer answering a
    /// [`Wire::RepairPullBatch`]: every requested share from one
    /// holder to one cover in a single frame. `bytes` is the summed
    /// share payload size.
    RepairPushBatch {
        /// Number of `(key, idx, len)` share entries carried.
        keys: u32,
        /// Total share payload bytes across all entries.
        bytes: u32,
    },
}

impl Wire {
    /// Fixed per-message overhead: src/dst (8), tag (1), op id (4),
    /// attempt + step stamps (8).
    pub const HEADER_BYTES: u64 = 21;

    /// Modeled size of this message on the wire.
    pub fn wire_bytes(&self) -> u64 {
        Self::HEADER_BYTES
            + match self {
                // target point + digit-string header (4 bits per digit
                // covers ∆ ≤ 16) + action payload
                Wire::LookupStep { digits, action, .. } => {
                    8 + u64::from(*digits).div_ceil(2)
                        + match action {
                            Action::Locate => 0,
                            Action::Put { len, .. } => 12 + u64::from(*len),
                            Action::Get { .. } | Action::Remove { .. } => 8,
                            Action::CacheServe { .. } => 8,
                            // key + per-share len + (m, k) + item point;
                            // the routed request carries no share data —
                            // shares travel in StoreShare/ShareReply
                            Action::PutShares { .. } => 22,
                            Action::GetShares { .. } => 18,
                        }
                }
                Wire::JoinSplit { .. } => 8,
                Wire::LeaveMerge { items } => 4 + 16 * u64::from(*items),
                Wire::NeighborDiff { entries } => 4 + 12 * u64::from(*entries),
                // key + idx + len field + the share payload itself
                Wire::StoreShare { len, .. } => 13 + u64::from(*len),
                Wire::ShareAck { .. } => 1,
                Wire::FetchShare { .. } => 9,
                Wire::ShareReply { found, len, .. } => {
                    13 + if *found { 1 + u64::from(*len) } else { 1 }
                }
                // one (key, version) entry per digest line
                Wire::ShareDigest { keys } => 4 + 12 * u64::from(*keys),
                Wire::RepairPull { .. } => 9,
                Wire::RepairPush { len, .. } => 13 + u64::from(*len),
                // count field + one (key, idx) entry per pull
                Wire::RepairPullBatch { keys } => 4 + 9 * u64::from(*keys),
                // count field + one (key, idx, len) entry per share +
                // the summed share payloads
                Wire::RepairPushBatch { keys, bytes } => {
                    4 + 13 * u64::from(*keys) + u64::from(*bytes)
                }
            }
    }

    /// The op this message belongs to, if it is a routed op message.
    pub fn op(&self) -> Option<OpId> {
        match self {
            Wire::LookupStep { op, .. }
            | Wire::StoreShare { op, .. }
            | Wire::ShareAck { op, .. }
            | Wire::FetchShare { op, .. }
            | Wire::ShareReply { op, .. } => Some(*op),
            _ => None,
        }
    }

    /// Short tag for traces and fingerprints.
    pub fn tag(&self) -> u8 {
        match self {
            Wire::LookupStep { .. } => 0,
            Wire::JoinSplit { .. } => 1,
            Wire::LeaveMerge { .. } => 2,
            Wire::NeighborDiff { .. } => 3,
            Wire::StoreShare { .. } => 4,
            Wire::ShareAck { .. } => 5,
            Wire::FetchShare { .. } => 6,
            Wire::ShareReply { .. } => 7,
            Wire::ShareDigest { .. } => 8,
            Wire::RepairPull { .. } => 9,
            Wire::RepairPush { .. } => 10,
            Wire::RepairPullBatch { .. } => 11,
            Wire::RepairPushBatch { .. } => 12,
        }
    }
}

/// A message in flight: sender, receiver and payload. The `corrupt`
/// flag models §6's false message injection — a faulty transport
/// delivers the message but the payload integrity is gone.
#[derive(Clone, Copy, Debug)]
pub struct Envelope {
    /// Sending server.
    pub src: NodeId,
    /// Receiving server.
    pub dst: NodeId,
    /// The RPC.
    pub msg: Wire,
    /// Whether a faulty link corrupted the payload in flight.
    pub corrupt: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_model_is_monotone_in_payload() {
        let small = Wire::LookupStep {
            op: 0,
            attempt: 0,
            step: 0,
            at: Point(0),
            digits: 0,
            action: Action::Put { key: 1, len: 10 },
        };
        let big = Wire::LookupStep {
            op: 0,
            attempt: 0,
            step: 0,
            at: Point(0),
            digits: 0,
            action: Action::Put { key: 1, len: 100 },
        };
        assert!(big.wire_bytes() == small.wire_bytes() + 90);
        assert!(small.wire_bytes() > Wire::HEADER_BYTES);
    }

    #[test]
    fn dh_header_charges_digits() {
        let mk = |digits| Wire::LookupStep {
            op: 0,
            attempt: 0,
            step: 0,
            at: Point(0),
            digits,
            action: Action::Locate,
        };
        assert!(mk(16).wire_bytes() > mk(0).wire_bytes());
    }

    #[test]
    fn replica_messages_charge_share_payloads() {
        let store = |len| Wire::StoreShare { op: 0, attempt: 1, idx: 3, key: 9, len };
        assert_eq!(store(100).wire_bytes(), store(0).wire_bytes() + 100);
        let reply = |found, len| Wire::ShareReply { op: 0, attempt: 1, idx: 3, key: 9, found, len };
        assert!(reply(true, 64).wire_bytes() > reply(false, 0).wire_bytes());
        // control messages are small: an ack is near the bare header
        assert_eq!(Wire::ShareAck { op: 0, attempt: 1, idx: 3 }.wire_bytes(), Wire::HEADER_BYTES + 1);
        // digests charge per entry, like NeighborDiff
        assert_eq!(
            Wire::ShareDigest { keys: 5 }.wire_bytes() - Wire::ShareDigest { keys: 0 }.wire_bytes(),
            5 * 12
        );
        // the routed request never carries the payload itself
        let routed = Wire::LookupStep {
            op: 0,
            attempt: 1,
            step: 0,
            at: Point(0),
            digits: 0,
            action: Action::PutShares { key: 9, len: 4096, m: 8, k: 4, item: Point(0) },
        };
        assert!(routed.wire_bytes() < 100);
        assert!(Action::PutShares { key: 0, len: 0, m: 1, k: 1, item: Point(0) }.is_replicated());
        assert!(!Action::Locate.is_replicated());
    }

    #[test]
    fn batched_repair_frames_amortize_headers() {
        // one batch of n pulls costs one header; n singles cost n
        let n = 7u32;
        let singles = u64::from(n) * Wire::RepairPull { key: 1, idx: 0 }.wire_bytes();
        let batch = Wire::RepairPullBatch { keys: n }.wire_bytes();
        assert!(batch < singles);
        assert_eq!(batch, Wire::HEADER_BYTES + 4 + 9 * u64::from(n));
        // push batch charges entries plus summed payload
        let pb = |keys, bytes| Wire::RepairPushBatch { keys, bytes }.wire_bytes();
        assert_eq!(pb(3, 300) - pb(3, 0), 300);
        assert_eq!(pb(3, 0) - pb(0, 0), 3 * 13);
        // batch frames are bare protocol messages
        assert_eq!(Wire::RepairPullBatch { keys: 1 }.op(), None);
        assert_eq!(Wire::RepairPushBatch { keys: 1, bytes: 9 }.op(), None);
        // tags stay distinct
        assert_eq!(Wire::RepairPullBatch { keys: 0 }.tag(), 11);
        assert_eq!(Wire::RepairPushBatch { keys: 0, bytes: 0 }.tag(), 12);
    }
}
