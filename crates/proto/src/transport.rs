//! Pluggable message-delivery substrates.
//!
//! A [`Transport`] decides, for each sent [`Envelope`], *when* (and
//! whether, and how many times) it arrives. The engine turns those
//! decisions into deliveries on its priority-queue clock, so latency,
//! loss, duplication and reordering are entirely the transport's
//! business and every protocol above runs unchanged on all of them.
//!
//! | transport | behavior |
//! | --- | --- |
//! | [`Inline`] | zero latency, FIFO — direct dispatch, routes bit-identical to the synchronous algorithms |
//! | [`Sim`] | per-link latency + per-message jitter, seeded drops and duplication (jitter ⇒ reordering) |
//! | [`Recorder`] | wraps any transport, records every decision into a [`Trace`] |
//! | [`Replay`] | replays a recorded [`Trace`] decision-for-decision |
//! | [`crate::fault::Faulty`] | wraps any transport with the §6 failure models |

use crate::node::NodeId;
use crate::wire::Envelope;
use cd_core::rng::{seeded, splitmix64};
use rand::rngs::StdRng;
use rand::Rng;

/// One planned arrival of a sent message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Delivery {
    /// Absolute engine time of the arrival.
    pub at: u64,
    /// Whether the payload was corrupted in flight (false message
    /// injection; see [`crate::fault`]).
    pub corrupt: bool,
}

/// A message-delivery substrate. Implementations must be
/// deterministic: the same sequence of `plan` calls (same `now`, same
/// envelopes) must produce the same deliveries.
pub trait Transport {
    /// Plan the arrivals of `env`, sent at time `now`, by pushing zero
    /// or more [`Delivery`] entries (none ⇒ the message is lost).
    fn plan(&mut self, now: u64, env: &Envelope, out: &mut Vec<Delivery>);
}

impl<T: Transport + ?Sized> Transport for &mut T {
    fn plan(&mut self, now: u64, env: &Envelope, out: &mut Vec<Delivery>) {
        (**self).plan(now, env, out)
    }
}

/// A shared transport handle: many sequential engine runs (one per
/// operation, as the replica layer creates them) can drive the *same*
/// underlying transport, so its state — RNG stream, recorded trace,
/// chaos schedules — is continuous across operations. Cloning the
/// `Rc` is how a `make_transport(attempt)` closure hands every
/// attempt the same substrate.
impl<T: Transport> Transport for std::rc::Rc<std::cell::RefCell<T>> {
    fn plan(&mut self, now: u64, env: &Envelope, out: &mut Vec<Delivery>) {
        self.borrow_mut().plan(now, env, out)
    }
}

/// Zero-overhead direct dispatch: every message arrives instantly and
/// in order. The engine over `Inline` executes exactly the synchronous
/// hop sequence of `DhNetwork::lookup` (property-tested in `dh_dht`).
#[derive(Clone, Copy, Default, Debug)]
pub struct Inline;

impl Transport for Inline {
    fn plan(&mut self, now: u64, _env: &Envelope, out: &mut Vec<Delivery>) {
        out.push(Delivery { at: now, corrupt: false });
    }
}

/// A latency/loss/duplication model.
///
/// Each link `(src, dst)` gets a fixed base latency in
/// `[latency_min, latency_max]` (derived by hashing the link with the
/// seed), and every message adds per-message jitter in `[0, jitter]`
/// drawn from the transport's own RNG — so messages on the *same* link
/// can overtake each other. Drops and duplication are Bernoulli with
/// the configured probabilities. Fully deterministic per seed.
#[derive(Clone, Debug)]
pub struct Sim {
    /// Smallest per-link base latency (ticks).
    pub latency_min: u64,
    /// Largest per-link base latency (ticks).
    pub latency_max: u64,
    /// Per-message jitter bound (ticks); > 0 enables same-link
    /// reordering.
    pub jitter: u64,
    /// Probability a message is lost.
    pub drop_p: f64,
    /// Probability a message is duplicated (two arrivals).
    pub dup_p: f64,
    seed: u64,
    rng: StdRng,
}

impl Sim {
    /// A lossless WAN-ish model: link latencies 4–16 ticks, jitter 4.
    pub fn new(seed: u64) -> Self {
        Sim {
            latency_min: 4,
            latency_max: 16,
            jitter: 4,
            drop_p: 0.0,
            dup_p: 0.0,
            seed,
            rng: seeded(splitmix64(seed ^ 0x51B0_7A5E)),
        }
    }

    /// Set the loss probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability {p} out of range");
        self.drop_p = p;
        self
    }

    /// Set the duplication probability.
    pub fn with_dup(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "dup probability {p} out of range");
        self.dup_p = p;
        self
    }

    /// Set the latency band and per-message jitter.
    pub fn with_latency(mut self, min: u64, max: u64, jitter: u64) -> Self {
        assert!(min <= max);
        self.latency_min = min;
        self.latency_max = max;
        self.jitter = jitter;
        self
    }

    /// The fixed base latency of the directed link `src → dst`.
    pub fn link_latency(&self, src: NodeId, dst: NodeId) -> u64 {
        let span = self.latency_max - self.latency_min;
        let h = splitmix64(self.seed ^ (u64::from(src.0) << 32) ^ u64::from(dst.0));
        self.latency_min + if span == 0 { 0 } else { h % (span + 1) }
    }
}

impl Transport for Sim {
    fn plan(&mut self, now: u64, env: &Envelope, out: &mut Vec<Delivery>) {
        if self.drop_p > 0.0 && self.rng.gen_bool(self.drop_p) {
            return;
        }
        let base = now + self.link_latency(env.src, env.dst);
        let jitter = |rng: &mut StdRng, j: u64| if j == 0 { 0 } else { rng.gen_range(0..=j) };
        let j0 = jitter(&mut self.rng, self.jitter);
        out.push(Delivery { at: base + j0, corrupt: false });
        if self.dup_p > 0.0 && self.rng.gen_bool(self.dup_p) {
            let j1 = jitter(&mut self.rng, self.jitter);
            out.push(Delivery { at: base + j1, corrupt: false });
        }
    }
}

/// One recorded transport decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Send time.
    pub sent_at: u64,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Message tag ([`crate::wire::Wire::tag`]).
    pub tag: u8,
    /// Modeled size of the message.
    pub bytes: u64,
    /// Planned arrivals (empty ⇒ dropped).
    pub deliveries: Vec<Delivery>,
}

/// A complete record of every transport decision of an engine run —
/// the replay-debugging artifact and the determinism witness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// The decisions, in send order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Number of sends recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// A 64-bit fingerprint of the whole trace (order-sensitive).
    /// Identical traces ⇒ identical fingerprints, so asserting a
    /// fingerprint pins the entire event schedule of a seeded run.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| h = splitmix64(h ^ v);
        for r in &self.records {
            mix(r.sent_at);
            mix((u64::from(r.src.0) << 32) | u64::from(r.dst.0));
            mix((u64::from(r.tag) << 56) | r.bytes);
            for d in &r.deliveries {
                mix(d.at.wrapping_mul(2).wrapping_add(u64::from(d.corrupt)));
            }
            mix(r.deliveries.len() as u64);
        }
        h
    }
}

/// Wraps any transport and records its decisions into a [`Trace`].
pub struct Recorder<T> {
    inner: T,
    /// The trace recorded so far.
    pub trace: Trace,
}

impl<T: Transport> Recorder<T> {
    /// Record the decisions of `inner`.
    pub fn new(inner: T) -> Self {
        Recorder { inner, trace: Trace::default() }
    }

    /// Stop recording and return the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The wrapped transport (e.g. to advance a `ChaosNet` epoch
    /// mid-recording).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: Transport> Transport for Recorder<T> {
    fn plan(&mut self, now: u64, env: &Envelope, out: &mut Vec<Delivery>) {
        let start = out.len();
        self.inner.plan(now, env, out);
        self.trace.records.push(TraceRecord {
            sent_at: now,
            src: env.src,
            dst: env.dst,
            tag: env.msg.tag(),
            bytes: env.msg.wire_bytes(),
            deliveries: out[start..].to_vec(),
        });
    }
}

/// Replays a recorded [`Trace`]: the `k`-th send of the run gets
/// exactly the deliveries the `k`-th record planned. Panics if the
/// replayed run diverges from the recording (different sender,
/// receiver or message kind at some step) — that divergence is the
/// bug the replay is hunting.
pub struct Replay {
    trace: Trace,
    cursor: usize,
}

impl Replay {
    /// Replay `trace` from the beginning.
    pub fn new(trace: Trace) -> Self {
        Replay { trace, cursor: 0 }
    }

    /// How many records have been consumed.
    pub fn position(&self) -> usize {
        self.cursor
    }
}

impl Transport for Replay {
    fn plan(&mut self, now: u64, env: &Envelope, out: &mut Vec<Delivery>) {
        let rec = self
            .trace
            .records
            .get(self.cursor)
            .unwrap_or_else(|| panic!("replay exhausted after {} sends", self.cursor));
        assert_eq!(
            (rec.sent_at, rec.src, rec.dst, rec.tag),
            (now, env.src, env.dst, env.msg.tag()),
            "replay diverged at send #{}: recorded {:?}→{:?} tag {} at t={}, live {:?}→{:?} tag {} at t={now}",
            self.cursor,
            rec.src,
            rec.dst,
            rec.tag,
            rec.sent_at,
            env.src,
            env.dst,
            env.msg.tag(),
        );
        out.extend(rec.deliveries.iter().copied());
        self.cursor += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Action, Wire};
    use cd_core::point::Point;

    fn env(src: u32, dst: u32) -> Envelope {
        Envelope {
            src: NodeId(src),
            dst: NodeId(dst),
            msg: Wire::LookupStep {
                op: 0,
                attempt: 0,
                step: 0,
                at: Point(42),
                digits: 0,
                action: Action::Locate,
            },
            corrupt: false,
        }
    }

    #[test]
    fn inline_is_instant() {
        let mut t = Inline;
        let mut out = Vec::new();
        t.plan(7, &env(0, 1), &mut out);
        assert_eq!(out, vec![Delivery { at: 7, corrupt: false }]);
    }

    #[test]
    fn sim_is_deterministic_per_seed() {
        let runs: Vec<Vec<Delivery>> = (0..2)
            .map(|_| {
                let mut t = Sim::new(9).with_drop(0.2).with_dup(0.2);
                let mut all = Vec::new();
                for i in 0..200u32 {
                    let mut out = Vec::new();
                    t.plan(u64::from(i), &env(i % 7, (i + 1) % 7), &mut out);
                    all.extend(out);
                }
                all
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert!(!runs[0].is_empty());
    }

    #[test]
    fn sim_latency_is_within_band_and_link_stable() {
        let t = Sim::new(3).with_latency(5, 9, 0);
        for s in 0..20 {
            for d in 0..20 {
                let l = t.link_latency(NodeId(s), NodeId(d));
                assert!((5..=9).contains(&l));
                assert_eq!(l, t.link_latency(NodeId(s), NodeId(d)));
            }
        }
    }

    #[test]
    fn recorder_replay_roundtrip() {
        let mut rec = Recorder::new(Sim::new(11).with_drop(0.3).with_dup(0.3));
        let mut outs = Vec::new();
        for i in 0..100u32 {
            let mut out = Vec::new();
            rec.plan(u64::from(i), &env(i, i + 1), &mut out);
            outs.push(out);
        }
        let trace = rec.into_trace();
        let fp = trace.fingerprint();
        let mut rep = Replay::new(trace);
        for i in 0..100u32 {
            let mut out = Vec::new();
            rep.plan(u64::from(i), &env(i, i + 1), &mut out);
            assert_eq!(out, outs[i as usize]);
        }
        // the fingerprint is a pure function of the records
        let mut rec2 = Recorder::new(Sim::new(11).with_drop(0.3).with_dup(0.3));
        for i in 0..100u32 {
            let mut out = Vec::new();
            rec2.plan(u64::from(i), &env(i, i + 1), &mut out);
        }
        assert_eq!(rec2.trace.fingerprint(), fp);
    }

    #[test]
    #[should_panic(expected = "replay diverged")]
    fn replay_detects_divergence() {
        let mut rec = Recorder::new(Inline);
        let mut out = Vec::new();
        rec.plan(0, &env(1, 2), &mut out);
        let mut rep = Replay::new(rec.into_trace());
        out.clear();
        rep.plan(0, &env(1, 3), &mut out);
    }
}
