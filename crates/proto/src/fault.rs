//! The §6 failure models — and the grey failures beyond them — as
//! transport behaviors.
//!
//! The paper studies two adversaries: *fail-stop* (a failed server
//! never responds) and *false message injection* (a failed server
//! keeps routing but its payloads are corrupted). Both are properties
//! of the communication substrate, not of the overlay topology — so
//! here they are transport wrappers: [`Faulty`] turns any inner
//! transport into a faulty one, and the same engine-driven protocols
//! run against it unchanged. (`dh_fault` keeps the §6 *overlapping
//! discretisation*, which is a genuinely different topology; its
//! `FaultModel` is this one, re-exported.)
//!
//! Deployed overlays, though, mostly die of failures the paper's
//! binary model cannot express: slow-but-alive peers, flapping
//! processes, asymmetric partitions, congestion loss. [`ChaosNet`]
//! extends the vocabulary with exactly those shapes — every one a
//! deterministic function of the chaos seed and the (epoch-extended)
//! clock, so a chaos campaign fingerprints as reproducibly as a
//! healthy run:
//!
//! * **partitions** ([`Partition`]) — a node-set bisection with a
//!   [`CutDirection`] (two-way, or asymmetric one-way cuts) active on
//!   a `[from, until)` window; the window end *is* the heal event;
//! * **grey nodes** — per-node service-latency multipliers: every
//!   delivery to or from a grey node takes `mult ×` the inner
//!   transport's latency (the node is slow, not dead);
//! * **flapping** ([`FlapSchedule`]) — nodes that fail and recover on
//!   a seeded periodic schedule (down for `down` out of every
//!   `period` ticks, phase-shifted per node);
//! * **loss bursts** ([`LossBurst`]) — windows in which sends are
//!   dropped with a seeded per-send Bernoulli.
//!
//! Engines restart their clock at zero for every operation, but chaos
//! schedules need to span many operations — that is what the **epoch**
//! is for: a harness advances [`ChaosNet::set_epoch`] between ops and
//! every schedule is evaluated at `epoch + now`, giving flaps and
//! partitions a continuous timeline across per-op engine runs.

use crate::node::NodeId;
use crate::transport::{Delivery, Transport};
use crate::wire::Envelope;
use cd_core::rng::splitmix64;
use std::collections::{BTreeMap, BTreeSet};

/// Which failure model is active.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultModel {
    /// Failed servers do not respond at all.
    FailStop,
    /// Failed servers respond with corrupted payloads but follow the
    /// routing protocol otherwise (§6's false message injection).
    FalseMessageInjection,
}

/// Wraps a transport with a set of failed servers and a
/// [`FaultModel`].
///
/// * Under [`FaultModel::FailStop`], every message **to or from** a
///   failed server is silently lost (a crashed server neither sends
///   nor receives); the engine's timeout/retry machinery sees exactly
///   what a real peer would see.
/// * Under [`FaultModel::FalseMessageInjection`], messages are
///   delivered on schedule but anything *sent by* a failed server
///   arrives with the `corrupt` flag set — routing survives, payload
///   integrity does not, which is what majority filtering defends
///   against.
pub struct Faulty<T> {
    inner: T,
    /// The active failure semantics.
    pub model: FaultModel,
    /// The failed servers.
    pub failed: BTreeSet<NodeId>,
}

impl<T: Transport> Faulty<T> {
    /// Wrap `inner` with no failures yet.
    pub fn new(inner: T, model: FaultModel) -> Self {
        Faulty { inner, model, failed: BTreeSet::new() }
    }

    /// Mark a server failed.
    pub fn fail(&mut self, id: NodeId) {
        self.failed.insert(id);
    }

    /// Revive a server.
    pub fn revive(&mut self, id: NodeId) {
        self.failed.remove(&id);
    }

    /// Is `id` currently failed?
    pub fn is_failed(&self, id: NodeId) -> bool {
        self.failed.contains(&id)
    }
}

impl<T: Transport> Transport for Faulty<T> {
    fn plan(&mut self, now: u64, env: &Envelope, out: &mut Vec<Delivery>) {
        match self.model {
            FaultModel::FailStop => {
                if self.failed.contains(&env.src) || self.failed.contains(&env.dst) {
                    return; // dropped on the floor
                }
                self.inner.plan(now, env, out);
            }
            FaultModel::FalseMessageInjection => {
                let start = out.len();
                self.inner.plan(now, env, out);
                if self.failed.contains(&env.src) {
                    for d in out.iter_mut().skip(start) {
                        d.corrupt = true;
                    }
                }
            }
        }
    }
}

/// Which directions a [`Partition`] severs. Side *A* is the
/// partition's member set; side *B* is everyone else.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CutDirection {
    /// Nothing crosses in either direction (a full bisection).
    Both,
    /// Messages from side A toward side B are lost; B → A still
    /// flows (an asymmetric one-way cut).
    AToB,
    /// Messages from side B toward side A are lost; A → B still
    /// flows.
    BToA,
}

/// One scheduled network partition. Active on the effective-time
/// window `[from, until)`; the window end is the heal event.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Side A of the cut (side B is the complement).
    pub a: BTreeSet<NodeId>,
    /// Which crossing directions are severed.
    pub cut: CutDirection,
    /// Effective time the cut appears.
    pub from: u64,
    /// Effective time the cut heals (exclusive).
    pub until: u64,
}

impl Partition {
    /// Does this partition drop a `src → dst` send at effective time
    /// `t`?
    pub fn blocks(&self, t: u64, src: NodeId, dst: NodeId) -> bool {
        if t < self.from || t >= self.until {
            return false;
        }
        let src_a = self.a.contains(&src);
        let dst_a = self.a.contains(&dst);
        if src_a == dst_a {
            return false; // same side: unaffected
        }
        match self.cut {
            CutDirection::Both => true,
            CutDirection::AToB => src_a,
            CutDirection::BToA => !src_a,
        }
    }
}

/// A periodic fail/recover cycle: the node is down for the first
/// `down` out of every `period` effective ticks, phase-shifted so a
/// population of flapping nodes does not blink in lockstep.
#[derive(Clone, Copy, Debug)]
pub struct FlapSchedule {
    /// Cycle length (ticks); `0` disables the schedule.
    pub period: u64,
    /// Down-time per cycle (ticks).
    pub down: u64,
    /// Per-node phase shift (ticks).
    pub phase: u64,
}

impl FlapSchedule {
    /// Is the node down at effective time `t`?
    pub fn is_down(&self, t: u64) -> bool {
        if self.period == 0 {
            return false;
        }
        t.wrapping_add(self.phase) % self.period < self.down.min(self.period)
    }
}

/// A window of congestion loss: sends inside `[from, until)` are
/// dropped with probability `permille / 1000` (seeded per-send
/// Bernoulli).
#[derive(Clone, Copy, Debug)]
pub struct LossBurst {
    /// Effective time the burst starts.
    pub from: u64,
    /// Effective time the burst ends (exclusive).
    pub until: u64,
    /// Drop probability in per-mille (0–1000).
    pub permille: u64,
}

/// Deterministic grey-failure injection around any inner transport.
/// See the module docs for the fault taxonomy. Drop decisions happen
/// *before* the inner transport is consulted, so a chaos-dropped send
/// consumes no inner-transport randomness — healing a partition
/// leaves the surviving links' schedule untouched.
pub struct ChaosNet<T> {
    inner: T,
    seed: u64,
    epoch: u64,
    sends: u64,
    /// Scheduled partitions (all are consulted; any active one that
    /// blocks a send drops it).
    pub partitions: Vec<Partition>,
    /// Per-node service-latency multipliers (absent ⇒ 1, healthy). A
    /// delivery's latency is scaled by the larger of the two
    /// endpoints' multipliers.
    pub grey: BTreeMap<NodeId, u64>,
    /// Per-node flap schedules.
    pub flaps: BTreeMap<NodeId, FlapSchedule>,
    /// Scheduled loss bursts.
    pub bursts: Vec<LossBurst>,
}

impl<T: Transport> ChaosNet<T> {
    /// Wrap `inner` with no chaos configured yet. The seed drives the
    /// node-set samplers, flap phases and burst Bernoullis.
    pub fn new(inner: T, seed: u64) -> Self {
        ChaosNet {
            inner,
            seed,
            epoch: 0,
            sends: 0,
            partitions: Vec::new(),
            grey: BTreeMap::new(),
            flaps: BTreeMap::new(),
            bursts: Vec::new(),
        }
    }

    /// The inner transport (e.g. to reconfigure a wrapped `Sim`).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Advance the epoch: every schedule is evaluated at
    /// `epoch + now`, letting chaos windows span many per-op engine
    /// runs (each of which restarts its clock at zero).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Add an explicit partition.
    pub fn partition(&mut self, a: BTreeSet<NodeId>, cut: CutDirection, from: u64, until: u64) {
        self.partitions.push(Partition { a, cut, from, until });
    }

    /// Bisect `nodes` into two pseudo-random halves (a deterministic
    /// function of the chaos seed) and cut them apart on
    /// `[from, until)`. Returns side A.
    pub fn bisect(&mut self, nodes: &[NodeId], cut: CutDirection, from: u64, until: u64) -> BTreeSet<NodeId> {
        let a: BTreeSet<NodeId> = nodes
            .iter()
            .copied()
            .filter(|n| splitmix64(self.seed ^ 0xB15E_C7ED ^ u64::from(n.0)) & 1 == 0)
            .collect();
        self.partitions.push(Partition { a: a.clone(), cut, from, until });
        a
    }

    /// Remove every partition immediately (an unscheduled heal).
    pub fn heal_partitions(&mut self) {
        self.partitions.clear();
    }

    /// Mark one node grey with the given latency multiplier.
    pub fn set_grey(&mut self, node: NodeId, mult: u64) {
        self.grey.insert(node, mult.max(1));
    }

    /// Mark roughly `permille / 1000` of `nodes` grey (seeded
    /// per-node pick) with latency multiplier `mult`. Returns the
    /// chosen set.
    pub fn grey_fraction(&mut self, nodes: &[NodeId], permille: u64, mult: u64) -> BTreeSet<NodeId> {
        let picked: BTreeSet<NodeId> = nodes
            .iter()
            .copied()
            .filter(|n| splitmix64(self.seed ^ 0x62E7_6E7A ^ u64::from(n.0)) % 1000 < permille)
            .collect();
        for &n in &picked {
            self.grey.insert(n, mult.max(1));
        }
        picked
    }

    /// The latency multiplier of `node` (1 ⇒ healthy).
    pub fn grey_of(&self, node: NodeId) -> u64 {
        self.grey.get(&node).copied().unwrap_or(1)
    }

    /// Give one node a flap schedule.
    pub fn set_flap(&mut self, node: NodeId, schedule: FlapSchedule) {
        self.flaps.insert(node, schedule);
    }

    /// Put roughly `permille / 1000` of `nodes` on a fail/recover
    /// cycle (down for `down` of every `period` ticks, seeded phase
    /// per node). Returns the chosen set.
    pub fn flap_fraction(
        &mut self,
        nodes: &[NodeId],
        permille: u64,
        period: u64,
        down: u64,
    ) -> BTreeSet<NodeId> {
        let picked: BTreeSet<NodeId> = nodes
            .iter()
            .copied()
            .filter(|n| splitmix64(self.seed ^ 0xF1A9_F1A9 ^ u64::from(n.0)) % 1000 < permille)
            .collect();
        for &n in &picked {
            let phase = if period == 0 {
                0
            } else {
                splitmix64(self.seed ^ 0x9A5E_0FF5 ^ u64::from(n.0)) % period
            };
            self.flaps.insert(n, FlapSchedule { period, down, phase });
        }
        picked
    }

    /// Schedule a loss burst.
    pub fn loss_burst(&mut self, from: u64, until: u64, permille: u64) {
        self.bursts.push(LossBurst { from, until, permille: permille.min(1000) });
    }

    /// Is `node` flap-down at effective time `t`?
    pub fn is_down(&self, node: NodeId, t: u64) -> bool {
        match self.flaps.get(&node) {
            Some(f) => f.is_down(t),
            None => false,
        }
    }
}

impl<T: Transport> Transport for ChaosNet<T> {
    fn plan(&mut self, now: u64, env: &Envelope, out: &mut Vec<Delivery>) {
        let t = self.epoch.saturating_add(now);
        let sn = self.sends;
        self.sends = self.sends.wrapping_add(1);
        // 1. flapping: a down endpoint neither sends nor receives
        if self.is_down(env.src, t) || self.is_down(env.dst, t) {
            return;
        }
        // 2. partitions
        if self.partitions.iter().any(|p| p.blocks(t, env.src, env.dst)) {
            return;
        }
        // 3. loss bursts: seeded per-send Bernoulli
        for b in &self.bursts {
            if t >= b.from && t < b.until && splitmix64(self.seed ^ 0x1055_B0B5 ^ sn) % 1000 < b.permille {
                return;
            }
        }
        // 4. grey slowdown: scale the inner transport's latency
        let start = out.len();
        self.inner.plan(now, env, out);
        let g = self.grey_of(env.src).max(self.grey_of(env.dst));
        if g > 1 {
            for d in out.iter_mut().skip(start) {
                let lat = d.at.saturating_sub(now).max(1);
                d.at = now.saturating_add(lat.saturating_mul(g));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Inline, Sim};
    use crate::wire::Wire;
    use cd_core::point::Point;

    fn env(src: u32, dst: u32) -> Envelope {
        Envelope {
            src: NodeId(src),
            dst: NodeId(dst),
            msg: Wire::JoinSplit { x: Point(1) },
            corrupt: false,
        }
    }

    #[test]
    fn fail_stop_drops_both_directions() {
        let mut t = Faulty::new(Inline, FaultModel::FailStop);
        t.fail(NodeId(5));
        let mut out = Vec::new();
        t.plan(0, &env(5, 1), &mut out);
        t.plan(0, &env(1, 5), &mut out);
        assert!(out.is_empty());
        t.plan(0, &env(1, 2), &mut out);
        assert_eq!(out.len(), 1);
        t.revive(NodeId(5));
        t.plan(0, &env(5, 1), &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn injection_delivers_but_corrupts() {
        let mut t = Faulty::new(Inline, FaultModel::FalseMessageInjection);
        t.fail(NodeId(3));
        let mut out = Vec::new();
        t.plan(0, &env(3, 1), &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].corrupt, "a liar's message must arrive corrupted");
        out.clear();
        t.plan(0, &env(1, 3), &mut out);
        assert!(!out[0].corrupt, "messages *to* a liar are intact");
    }

    #[test]
    fn bisection_blocks_cross_traffic_until_heal() {
        let nodes: Vec<NodeId> = (0..64).map(NodeId).collect();
        let mut t = ChaosNet::new(Inline, 7);
        let a = t.bisect(&nodes, CutDirection::Both, 100, 200);
        assert!(!a.is_empty() && a.len() < nodes.len(), "a real bisection");
        let inside = *a.iter().next().unwrap();
        let outside = *nodes.iter().find(|n| !a.contains(n)).unwrap();
        let mut out = Vec::new();
        // before the window: flows
        t.plan(50, &env(inside.0, outside.0), &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        // inside the window: cut, both directions
        t.plan(150, &env(inside.0, outside.0), &mut out);
        t.plan(150, &env(outside.0, inside.0), &mut out);
        assert!(out.is_empty());
        // same side: unaffected
        let inside2 = *a.iter().nth(1).unwrap();
        t.plan(150, &env(inside.0, inside2.0), &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        // the window end is the heal event
        t.plan(200, &env(inside.0, outside.0), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn one_way_cut_is_asymmetric() {
        let mut a = BTreeSet::new();
        a.insert(NodeId(1));
        let mut t = ChaosNet::new(Inline, 3);
        t.partition(a, CutDirection::AToB, 0, u64::MAX);
        let mut out = Vec::new();
        t.plan(0, &env(1, 2), &mut out);
        assert!(out.is_empty(), "A → B is cut");
        t.plan(0, &env(2, 1), &mut out);
        assert_eq!(out.len(), 1, "B → A still flows");
    }

    #[test]
    fn grey_nodes_are_slow_not_dead() {
        let mut t = ChaosNet::new(Sim::new(5).with_latency(10, 10, 0), 5);
        t.set_grey(NodeId(9), 8);
        let mut out = Vec::new();
        t.plan(0, &env(1, 2), &mut out);
        assert_eq!(out[0].at, 10, "healthy link: inner latency");
        out.clear();
        t.plan(0, &env(1, 9), &mut out);
        assert_eq!(out[0].at, 80, "delivery *to* a grey node is 8× slower");
        out.clear();
        t.plan(0, &env(9, 1), &mut out);
        assert_eq!(out[0].at, 80, "delivery *from* a grey node is 8× slower");
        assert_eq!(t.grey_of(NodeId(9)), 8);
        assert_eq!(t.grey_of(NodeId(1)), 1);
    }

    #[test]
    fn flapping_follows_the_schedule_across_epochs() {
        let mut t = ChaosNet::new(Inline, 11);
        t.set_flap(NodeId(4), FlapSchedule { period: 100, down: 30, phase: 0 });
        let mut out = Vec::new();
        t.plan(10, &env(4, 1), &mut out);
        assert!(out.is_empty(), "down at t=10");
        t.plan(50, &env(4, 1), &mut out);
        assert_eq!(out.len(), 1, "up at t=50");
        out.clear();
        t.plan(50, &env(1, 4), &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        // the epoch shifts the effective clock: engine-time 10 in
        // epoch 100 is effective 110 — the node is back down
        t.set_epoch(100);
        t.plan(10, &env(1, 4), &mut out);
        assert!(out.is_empty(), "down again next cycle (epoch-extended time)");
        assert!(t.is_down(NodeId(4), 110));
        assert!(!t.is_down(NodeId(4), 50));
    }

    #[test]
    fn loss_bursts_drop_some_sends_deterministically() {
        let run = |seed: u64| {
            let mut t = ChaosNet::new(Inline, seed);
            t.loss_burst(0, 1000, 500);
            let mut kept = Vec::new();
            for i in 0..200u32 {
                let mut out = Vec::new();
                t.plan(5, &env(i % 9, (i + 1) % 9), &mut out);
                kept.push(!out.is_empty());
            }
            kept
        };
        let a = run(42);
        let dropped = a.iter().filter(|k| !**k).count();
        assert!(dropped > 50 && dropped < 150, "≈50% dropped, got {dropped}/200");
        assert_eq!(a, run(42), "burst decisions are a pure function of the seed");
        // outside the window nothing is dropped
        let mut t = ChaosNet::new(Inline, 42);
        t.loss_burst(100, 200, 1000);
        let mut out = Vec::new();
        t.plan(5, &env(1, 2), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn chaos_drops_consume_no_inner_randomness() {
        // A chaos-dropped send must not advance the inner Sim's RNG:
        // the surviving sends schedule exactly as if the dropped ones
        // had never been offered at all.
        let chaos = {
            let mut t = ChaosNet::new(Sim::new(77).with_latency(4, 16, 4), 77);
            // down at even effective ticks — every even send (to the
            // flapper, below) is chaos-dropped
            t.set_flap(NodeId(50), FlapSchedule { period: 2, down: 1, phase: 0 });
            let mut all = Vec::new();
            for i in 0..50u32 {
                let mut out = Vec::new();
                let (s, d) = if i % 2 == 0 { (50, i % 7) } else { (i % 7, (i + 1) % 7) };
                t.plan(u64::from(i), &env(s, d), &mut out);
                if i % 2 == 0 {
                    assert!(out.is_empty(), "send #{i} should be flap-dropped");
                } else {
                    all.push(out);
                }
            }
            all
        };
        let reference = {
            let mut t = Sim::new(77).with_latency(4, 16, 4);
            let mut all = Vec::new();
            for i in (1..50u32).step_by(2) {
                let mut out = Vec::new();
                t.plan(u64::from(i), &env(i % 7, (i + 1) % 7), &mut out);
                all.push(out);
            }
            all
        };
        assert_eq!(chaos, reference);
    }
}
