//! The §6 failure models as transport behaviors.
//!
//! The paper studies two adversaries: *fail-stop* (a failed server
//! never responds) and *false message injection* (a failed server
//! keeps routing but its payloads are corrupted). Both are properties
//! of the communication substrate, not of the overlay topology — so
//! here they are transport wrappers: [`Faulty`] turns any inner
//! transport into a faulty one, and the same engine-driven protocols
//! run against it unchanged. (`dh_fault` keeps the §6 *overlapping
//! discretisation*, which is a genuinely different topology; its
//! `FaultModel` is this one, re-exported.)

use crate::node::NodeId;
use crate::transport::{Delivery, Transport};
use crate::wire::Envelope;
use std::collections::BTreeSet;

/// Which failure model is active.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultModel {
    /// Failed servers do not respond at all.
    FailStop,
    /// Failed servers respond with corrupted payloads but follow the
    /// routing protocol otherwise (§6's false message injection).
    FalseMessageInjection,
}

/// Wraps a transport with a set of failed servers and a
/// [`FaultModel`].
///
/// * Under [`FaultModel::FailStop`], every message **to or from** a
///   failed server is silently lost (a crashed server neither sends
///   nor receives); the engine's timeout/retry machinery sees exactly
///   what a real peer would see.
/// * Under [`FaultModel::FalseMessageInjection`], messages are
///   delivered on schedule but anything *sent by* a failed server
///   arrives with the `corrupt` flag set — routing survives, payload
///   integrity does not, which is what majority filtering defends
///   against.
pub struct Faulty<T> {
    inner: T,
    /// The active failure semantics.
    pub model: FaultModel,
    /// The failed servers.
    pub failed: BTreeSet<NodeId>,
}

impl<T: Transport> Faulty<T> {
    /// Wrap `inner` with no failures yet.
    pub fn new(inner: T, model: FaultModel) -> Self {
        Faulty { inner, model, failed: BTreeSet::new() }
    }

    /// Mark a server failed.
    pub fn fail(&mut self, id: NodeId) {
        self.failed.insert(id);
    }

    /// Revive a server.
    pub fn revive(&mut self, id: NodeId) {
        self.failed.remove(&id);
    }

    /// Is `id` currently failed?
    pub fn is_failed(&self, id: NodeId) -> bool {
        self.failed.contains(&id)
    }
}

impl<T: Transport> Transport for Faulty<T> {
    fn plan(&mut self, now: u64, env: &Envelope, out: &mut Vec<Delivery>) {
        match self.model {
            FaultModel::FailStop => {
                if self.failed.contains(&env.src) || self.failed.contains(&env.dst) {
                    return; // dropped on the floor
                }
                self.inner.plan(now, env, out);
            }
            FaultModel::FalseMessageInjection => {
                let start = out.len();
                self.inner.plan(now, env, out);
                if self.failed.contains(&env.src) {
                    for d in &mut out[start..] {
                        d.corrupt = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Inline;
    use crate::wire::Wire;
    use cd_core::point::Point;

    fn env(src: u32, dst: u32) -> Envelope {
        Envelope {
            src: NodeId(src),
            dst: NodeId(dst),
            msg: Wire::JoinSplit { x: Point(1) },
            corrupt: false,
        }
    }

    #[test]
    fn fail_stop_drops_both_directions() {
        let mut t = Faulty::new(Inline, FaultModel::FailStop);
        t.fail(NodeId(5));
        let mut out = Vec::new();
        t.plan(0, &env(5, 1), &mut out);
        t.plan(0, &env(1, 5), &mut out);
        assert!(out.is_empty());
        t.plan(0, &env(1, 2), &mut out);
        assert_eq!(out.len(), 1);
        t.revive(NodeId(5));
        t.plan(0, &env(5, 1), &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn injection_delivers_but_corrupts() {
        let mut t = Faulty::new(Inline, FaultModel::FalseMessageInjection);
        t.fail(NodeId(3));
        let mut out = Vec::new();
        t.plan(0, &env(3, 1), &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].corrupt, "a liar's message must arrive corrupted");
        out.clear();
        t.plan(0, &env(1, 3), &mut out);
        assert!(!out[0].corrupt, "messages *to* a liar are intact");
    }
}
