//! The sharded engine runtime: one batch of independent routed ops,
//! partitioned across several [`Engine`] instances over the **same**
//! topology and executed in parallel.
//!
//! The paper's lookups are embarrassingly parallel: each op's random
//! choices come from `sub_rng(engine_seed, op_index)` and each hop
//! reads only immutable topology state, so two ops never interact.
//! [`run_sharded`] exploits exactly that — op `i` of the batch goes to
//! shard `i mod shards` (round-robin, so staggered start times stay
//! balanced), every shard runs its own engine with the *same* engine
//! seed, and every op is submitted with its **global** batch index via
//! [`Engine::submit_at_indexed`]. An op therefore draws the identical
//! digit string in every sharding, and under a transport whose per-op
//! behavior does not depend on interleaving
//! ([`crate::transport::Inline`], or any lossless transport as far as
//! routes are concerned) the sharded run
//! is **bit-identical, op for op, to the single-engine run** — merged
//! [`EngineStats`] included. Transports that consume a shared random
//! stream across ops ([`crate::transport::Sim`] with loss) stay
//! deterministic per `(seed, shards)` but their drop pattern depends
//! on the partition; give each shard its own seeded transport via the
//! factory.
//!
//! Shards execute on the workspace thread pool (`rayon` shim —
//! `std::thread::scope` chunks under the hood), and the merge restores
//! global op order, so results are independent of the worker count.

use crate::engine::{Engine, EngineStats, NoShares, OpOutcome, RetryPolicy, ShareView, Topology};
use crate::transport::Transport;
use crate::wire::{Action, RouteKind};
use crate::node::NodeId;
use cd_core::point::Point;
use rayon::prelude::*;

/// One routed operation of a sharded batch.
#[derive(Clone, Copy, Debug)]
pub struct OpSpec {
    /// Engine time at which the origin starts acting.
    pub at: u64,
    /// The routing algorithm.
    pub kind: RouteKind,
    /// Originating server.
    pub from: NodeId,
    /// Target point.
    pub target: Point,
    /// What to do at the destination.
    pub action: Action,
}

/// The merged result of a sharded run.
pub struct ShardedRun<T> {
    /// Per-op outcomes, in **global batch order** (index `i` of the
    /// input `ops` slice), routes handed out by move.
    pub outcomes: Vec<OpOutcome>,
    /// The shard engines' counters, merged by addition.
    pub stats: EngineStats,
    /// Each shard's transport, returned for inspection (recorded
    /// traces, fault bookkeeping), in shard order.
    pub transports: Vec<T>,
}

/// One shard's raw product: its engine counters, the `(global index,
/// outcome)` pairs of the ops it ran, and its transport.
type ShardProduct<T> = (EngineStats, Vec<(usize, OpOutcome)>, T);

/// Run `ops` over `net`, partitioned round-robin across `shards`
/// engines executing in parallel. `make_transport(s)` builds shard
/// `s`'s transport. See the module docs for the determinism contract.
pub fn run_sharded<G, T, F>(
    net: &G,
    seed: u64,
    retry: RetryPolicy,
    shards: usize,
    ops: &[OpSpec],
    make_transport: F,
) -> ShardedRun<T>
where
    G: Topology + Sync,
    T: Transport + Send,
    F: Fn(usize) -> T + Sync,
{
    run_sharded_shares(net, seed, retry, shards, ops, make_transport, &NoShares)
}

/// [`run_sharded`] with a share store attached: every shard engine
/// answers the `FetchShare` messages of replicated ops
/// ([`crate::wire::Action::GetShares`]) from `view`. The view is
/// read-only and shared across shards, so the determinism contract is
/// unchanged — the sharded batch over `Inline` is bit-identical to
/// the single-engine run for any shard and thread count.
pub fn run_sharded_shares<G, T, F, V>(
    net: &G,
    seed: u64,
    retry: RetryPolicy,
    shards: usize,
    ops: &[OpSpec],
    make_transport: F,
    view: &V,
) -> ShardedRun<T>
where
    G: Topology + Sync,
    T: Transport + Send,
    F: Fn(usize) -> T + Sync,
    V: ShareView + Sync,
{
    assert!(shards >= 1, "need at least one shard");
    let shards = shards.min(ops.len()).max(1);
    // with_max_len(1): each shard is one coarse unit of work — one
    // chunk per shard, so min(threads, shards) workers run them
    let per_shard: Vec<ShardProduct<T>> = (0..shards)
        .into_par_iter()
        .with_max_len(1)
        .map(|s| {
            let mut eng = Engine::new(net, make_transport(s), seed).with_retry(retry);
            let ids: Vec<(usize, crate::wire::OpId)> = ops
                .iter()
                .enumerate()
                .filter(|(i, _)| i % shards == s)
                .map(|(i, spec)| {
                    let id = eng.submit_at_indexed(
                        spec.at,
                        spec.kind,
                        spec.from,
                        spec.target,
                        spec.action,
                        i as u64,
                    );
                    (i, id)
                })
                .collect();
            eng.run_with_shares(view);
            let outs: Vec<(usize, OpOutcome)> =
                ids.into_iter().map(|(i, id)| (i, eng.take_outcome(id))).collect();
            (eng.stats, outs, eng.into_transport())
        })
        .collect();

    let mut stats = EngineStats::default();
    let mut slots: Vec<Option<OpOutcome>> = (0..ops.len()).map(|_| None).collect();
    let mut transports = Vec::with_capacity(shards);
    for (shard_stats, outs, transport) in per_shard {
        stats.merge(&shard_stats);
        for (i, out) in outs {
            debug_assert!(slots[i].is_none(), "op {i} produced twice");
            slots[i] = Some(out);
        }
        transports.push(transport);
    }
    let outcomes = slots.into_iter().map(|o| o.expect("op not executed by any shard")).collect();
    ShardedRun { outcomes, stats, transports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Inline, Recorder, Sim};
    use cd_core::interval::Interval;
    use cd_core::pointset::PointSet;

    /// Complete-graph toy topology (same construction as the engine's
    /// own tests): every server's table covers the circle.
    struct Complete {
        ps: PointSet,
        delta: u32,
    }

    impl Complete {
        fn new(n: usize) -> Self {
            Complete { ps: PointSet::evenly_spaced(n), delta: 2 }
        }
        fn cover(&self, p: Point) -> NodeId {
            let pts = self.ps.points();
            let idx = pts.partition_point(|x| x.bits() <= p.bits());
            NodeId(if idx == 0 { pts.len() as u32 - 1 } else { idx as u32 - 1 })
        }
    }

    impl Topology for Complete {
        fn delta(&self) -> u32 {
            self.delta
        }
        fn segment_of(&self, n: NodeId) -> Interval {
            self.ps.segment(n.0 as usize)
        }
        fn local_cover(&self, _cur: NodeId, p: Point) -> Option<NodeId> {
            Some(self.cover(p))
        }
    }

    fn specs(n: u64) -> Vec<OpSpec> {
        (0..n)
            .map(|i| OpSpec {
                at: i * 3,
                kind: if i % 2 == 0 { RouteKind::Fast } else { RouteKind::DistanceHalving },
                from: NodeId((i % 16) as u32),
                target: Point(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1)),
                action: Action::Locate,
            })
            .collect()
    }

    #[test]
    fn sharded_inline_is_bit_identical_to_single_engine() {
        let net = Complete::new(16);
        let ops = specs(60);
        let single = run_sharded(&net, 11, RetryPolicy::default(), 1, &ops, |_| Inline);
        for shards in [2usize, 3, 7, 60] {
            let sharded = run_sharded(&net, 11, RetryPolicy::default(), shards, &ops, |_| Inline);
            assert_eq!(sharded.stats, single.stats, "stats diverged at {shards} shards");
            for (i, (a, b)) in single.outcomes.iter().zip(&sharded.outcomes).enumerate() {
                assert_eq!(a.path, b.path, "route of op {i} diverged at {shards} shards");
                assert_eq!((a.ok, a.dest, a.msgs, a.bytes), (b.ok, b.dest, b.msgs, b.bytes));
                assert_eq!(a.completed_at, b.completed_at);
            }
        }
    }

    #[test]
    fn sharded_run_is_deterministic_per_seed_and_shard_count() {
        let net = Complete::new(16);
        let ops = specs(40);
        let retry = RetryPolicy::fixed(200, 10);
        let run = || {
            let r = run_sharded(&net, 7, retry, 4, &ops, |s| {
                Recorder::new(Sim::new(s as u64 ^ 0xD1CE).with_drop(0.05))
            });
            let fps: Vec<u64> = r.transports.iter().map(|t| t.trace.fingerprint()).collect();
            let briefs: Vec<(bool, u64, u32)> =
                r.outcomes.iter().map(|o| (o.ok, o.msgs, o.attempts)).collect();
            (r.stats, briefs, fps)
        };
        assert_eq!(run(), run(), "same (seed, shards) must reproduce the batch exactly");
    }

    #[test]
    fn every_op_lands_on_its_cover() {
        let net = Complete::new(32);
        let ops = specs(50);
        let r = run_sharded(&net, 3, RetryPolicy::default(), 5, &ops, |_| Inline);
        assert_eq!(r.stats.completed, 50);
        assert_eq!(r.stats.failed, 0);
        for (spec, out) in ops.iter().zip(&r.outcomes) {
            assert!(out.ok);
            assert_eq!(out.dest, Some(net.cover(spec.target)));
        }
    }
}
