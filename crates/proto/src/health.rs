//! Per-destination network health: adaptive RTT estimation and an
//! accrual-style suspicion failure detector.
//!
//! The §6 fault models are binary — a server is failed or it is not —
//! but deployed overlays mostly die of *grey* failures: slow links,
//! flapping peers, asymmetric partitions. Surviving those needs two
//! pieces of per-destination state that persist **across** operations:
//!
//! * [`RttEstimate`] — an integer Jacobson/Karels estimator (smoothed
//!   RTT + mean deviation, fixed-point ×8 / ×4 like the classic TCP
//!   implementation) fed with observed delivery delays. The engine
//!   derives per-destination progress timeouts from it
//!   (`srtt + 4·var`, scaled) instead of one fixed constant, so a
//!   slow-but-alive destination is *waited for* while a dead one is
//!   detected at network speed.
//! * a **suspicion counter** per node — raised when a progress timer
//!   fires against the node, raised slightly when a hedge passes over
//!   it, decayed every time any message from it is delivered. A node
//!   whose smoothed RTT sits far above the population's
//!   ([`NetHealth::slow_factor`]) carries a standing penalty, so grey
//!   nodes become suspects from pure observation, before any timeout
//!   fires.
//!
//! [`NetHealth`] is owned by the layer above the engine (e.g.
//! `dh_replica::ReplicatedDht`) and attached to each engine run with
//! `Engine::with_health`, which is what lets the detector outlive the
//! per-op engines and inform *future* routing and quorum planning.
//!
//! Everything here is integer arithmetic over `BTreeMap`s — a pure
//! function of the observed delivery schedule, so attaching health to
//! an engine never perturbs a trace by itself: only the opt-in
//! adaptive/hedged retry policies consult it.

use crate::node::NodeId;
use std::collections::BTreeMap;

/// Suspicion ceiling: bounds how long a recovered node needs to talk
/// itself back below the threshold.
const SUSPICION_CAP: u32 = 32;

/// Integer Jacobson/Karels RTT estimator. `srtt` is kept scaled ×8 and
/// the mean deviation ×4 (the classic fixed-point trick), so the
/// update is exact integer arithmetic: `srtt ← ⅞·srtt + ⅛·sample`,
/// `var ← ¾·var + ¼·|sample − srtt|`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RttEstimate {
    /// Smoothed delay, scaled ×8.
    srtt8: u64,
    /// Mean deviation, scaled ×4.
    var4: u64,
    /// Samples folded in.
    samples: u64,
}

impl RttEstimate {
    /// Fold one observed delivery delay (ticks) into the estimate.
    pub fn observe(&mut self, sample: u64) {
        if self.samples == 0 {
            self.srtt8 = sample * 8;
            self.var4 = sample * 2; // initial var = sample / 2
        } else {
            let err = sample.abs_diff(self.srtt8 / 8);
            self.srtt8 = self.srtt8 - self.srtt8 / 8 + sample;
            // Decay by at least 1 so the integer floor (`var4/4 == 0`
            // for var4 < 4) cannot pin a small residual deviation
            // forever on a steady signal.
            self.var4 = self.var4.saturating_sub((self.var4 / 4).max(1)) + err;
        }
        self.samples += 1;
    }

    /// Smoothed one-way delivery delay (ticks).
    pub fn srtt(&self) -> u64 {
        self.srtt8 / 8
    }

    /// Mean deviation of the delay (ticks).
    pub fn var(&self) -> u64 {
        self.var4 / 4
    }

    /// The classic retransmission bound `srtt + 4·var` (ticks).
    pub fn rto(&self) -> u64 {
        self.srtt8 / 8 + self.var4
    }

    /// Number of samples folded in.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// The failure detector + adaptive-timeout state shared across engine
/// runs. See the module docs; every knob is a public field with a
/// conservative default.
#[derive(Clone, Debug)]
pub struct NetHealth {
    /// Per-destination delivery-delay estimators.
    rtt: BTreeMap<NodeId, RttEstimate>,
    /// Population-wide estimator (all destinations pooled): the
    /// baseline that `slow_factor` compares against and the source of
    /// the hedge delay.
    global: RttEstimate,
    /// Accrual suspicion counters (absent ⇒ 0).
    susp: BTreeMap<NodeId, u32>,
    /// Floor of every adaptive timeout (ticks) — guards against a
    /// burst of tiny samples collapsing the timer to nothing.
    pub min_timeout: u64,
    /// A destination whose smoothed delay exceeds `slow_factor ×` the
    /// population's is carrying a standing grey-node penalty.
    pub slow_factor: u64,
    /// The standing suspicion penalty of a slow destination.
    pub slow_penalty: u32,
    /// Suspicion added when a progress timer fires against a node.
    pub raise: u32,
    /// Suspicion added when a hedge fires past a still-silent node.
    pub hedge_raise: u32,
    /// Suspicion removed whenever a message from the node is delivered.
    pub decay: u32,
    /// Suspicion at or above this level makes the node a suspect.
    pub threshold: u32,
    /// Minimum per-destination samples before the slow comparison is
    /// trusted.
    pub slow_min_samples: u64,
}

impl Default for NetHealth {
    fn default() -> Self {
        NetHealth {
            rtt: BTreeMap::new(),
            global: RttEstimate::default(),
            susp: BTreeMap::new(),
            min_timeout: 8,
            slow_factor: 3,
            slow_penalty: 6,
            raise: 8,
            hedge_raise: 2,
            decay: 1,
            threshold: 6,
            slow_min_samples: 3,
        }
    }
}

impl NetHealth {
    /// A fresh detector with the default knobs.
    pub fn new() -> Self {
        NetHealth::default()
    }

    /// Feed one observed delivery delay toward `dst` (ticks between
    /// send and planned arrival) into the per-destination and global
    /// estimators. The population baseline describes what *healthy*
    /// exchanges look like, so samples far above it (`slow_factor ×`
    /// its smoothed delay — a grey endpoint's doing) only train the
    /// per-destination estimator: one slow cover must not slacken
    /// every bound derived from the baseline (route caps, hedge
    /// delays, the slow comparison itself).
    pub fn observe(&mut self, dst: NodeId, delay: u64) {
        self.rtt.entry(dst).or_default().observe(delay);
        if self.global.samples() == 0
            || delay <= self.slow_factor.saturating_mul(self.global.srtt().max(1))
        {
            self.global.observe(delay);
        }
    }

    /// The per-destination estimate, if any samples exist.
    pub fn estimate(&self, dst: NodeId) -> Option<&RttEstimate> {
        self.rtt.get(&dst)
    }

    /// The population-wide estimate.
    pub fn global_estimate(&self) -> &RttEstimate {
        &self.global
    }

    /// The adaptive progress timeout for a send toward `dst`, clamped
    /// to `[min_timeout, ceiling]`. `3 × rto` covers a full
    /// request/response exchange (two delivery legs plus dispersion);
    /// with no samples at all the ceiling (the policy's fixed timeout)
    /// applies — cold starts are conservative, never trigger-happy.
    pub fn timeout_for(&self, dst: NodeId, ceiling: u64) -> u64 {
        let est = match self.rtt.get(&dst) {
            Some(e) if e.samples() > 0 => e,
            _ if self.global.samples() > 0 => &self.global,
            _ => return ceiling,
        };
        (est.rto().saturating_mul(3)).clamp(self.min_timeout.min(ceiling), ceiling)
    }

    /// How long a hedged quorum read waits for its first wave before
    /// launching a backup fetch: two population-typical exchanges —
    /// long enough that healthy stragglers almost never trigger it,
    /// short enough that a grey cover costs one hedge delay instead of
    /// a full timeout. Clamped to `[min_timeout, ceiling]`.
    pub fn hedge_delay(&self, ceiling: u64) -> u64 {
        if self.global.samples() == 0 {
            return (ceiling / 8).max(self.min_timeout).min(ceiling);
        }
        (self.global.rto().saturating_mul(2)).clamp(self.min_timeout.min(ceiling), ceiling)
    }

    /// The per-step progress bound of a *hedged* route: what a send to
    /// a population-typical cover takes (`3 × global rto`), regardless
    /// of how slow this particular destination has been. A hedged
    /// route forced across a known-slow cover should stall one
    /// healthy-sized wait, take the blame-driven restart and route
    /// around the cover — not sit out the slow cover's own inflated
    /// timeout. Cold start falls back to the ceiling, like
    /// [`Self::timeout_for`].
    pub fn route_cap(&self, ceiling: u64) -> u64 {
        if self.global.samples() == 0 {
            return ceiling;
        }
        (self.global.rto().saturating_mul(3)).clamp(self.min_timeout.min(ceiling), ceiling)
    }

    /// Is `dst` far slower than the population (a grey node)?
    pub fn is_slow(&self, dst: NodeId) -> bool {
        match self.rtt.get(&dst) {
            Some(e) => {
                e.samples() >= self.slow_min_samples
                    && self.global.samples() >= self.slow_min_samples
                    && e.srtt() > self.slow_factor.saturating_mul(self.global.srtt().max(1))
            }
            None => false,
        }
    }

    /// Raise suspicion of `node` by the timeout amount ([`Self::raise`]).
    pub fn raise(&mut self, node: NodeId) {
        let s = self.susp.entry(node).or_insert(0);
        *s = s.saturating_add(self.raise).min(SUSPICION_CAP);
    }

    /// Raise suspicion of `node` by the hedge amount
    /// ([`Self::hedge_raise`]) — a cover a hedge had to fire past.
    pub fn raise_hedge(&mut self, node: NodeId) {
        let s = self.susp.entry(node).or_insert(0);
        *s = s.saturating_add(self.hedge_raise).min(SUSPICION_CAP);
    }

    /// A message from `node` was delivered: decay its suspicion.
    pub fn alive(&mut self, node: NodeId) {
        if let Some(s) = self.susp.get_mut(&node) {
            *s = s.saturating_sub(self.decay);
            if *s == 0 {
                self.susp.remove(&node);
            }
        }
    }

    /// The suspicion level of `node`: the accrual counter plus the
    /// standing grey-node penalty when the node is [`Self::is_slow`].
    pub fn suspicion(&self, node: NodeId) -> u32 {
        let counter = self.susp.get(&node).copied().unwrap_or(0);
        let penalty = if self.is_slow(node) { self.slow_penalty } else { 0 };
        counter.saturating_add(penalty)
    }

    /// Is `node` currently a suspect (suspicion at/above the
    /// threshold)?
    pub fn is_suspect(&self, node: NodeId) -> bool {
        self.suspicion(node) >= self.threshold
    }

    /// Is `node` suspected *dead* — its accrual counter alone (no
    /// grey-node penalty) is at/above the threshold? Load shedding
    /// keys off this: a slow cover can still serve a quorum, an
    /// unresponsive one cannot.
    pub fn is_dead_suspect(&self, node: NodeId) -> bool {
        self.susp.get(&node).copied().unwrap_or(0) >= self.threshold
    }

    /// Number of nodes currently carrying a nonzero accrual counter.
    pub fn suspects(&self) -> usize {
        self.susp.iter().filter(|&(&n, _)| self.is_suspect(n)).count()
    }

    /// The nodes currently judged suspect, in id order (BTree
    /// iteration — deterministic). The list form of [`Self::suspects`],
    /// for tests and observability that need to name the suspects
    /// rather than count them.
    pub fn suspect_nodes(&self) -> Vec<NodeId> {
        self.susp.keys().copied().filter(|&n| self.is_suspect(n)).collect()
    }

    /// The retransmission-timeout estimate for `dst`: `None` until a
    /// delivery sample exists. Convenience over [`Self::estimate`] for
    /// callers that only want the Jacobson bound.
    pub fn rto(&self, dst: NodeId) -> Option<u64> {
        self.rtt.get(&dst).map(RttEstimate::rto)
    }

    /// Push the detector's state into a [`dh_obs`] registry: per-node
    /// rto gauges (`health/rto_ticks`, labelled by node id), per-node
    /// suspicion levels for every tracked node (`health/suspicion`),
    /// and a `health/suspects` gauge with the current suspect count.
    pub fn export(&self, obs: &dh_obs::Obs) {
        if !obs.is_on() {
            return;
        }
        for (&n, e) in &self.rtt {
            obs.gauge("health/rto_ticks", u64::from(n.0), e.rto());
        }
        for &n in self.susp.keys() {
            obs.gauge("health/suspicion", u64::from(n.0), u64::from(self.suspicion(n)));
        }
        obs.gauge("health/suspects", 0, self.suspects() as u64);
    }

    /// Forget everything (estimators and suspicion alike).
    pub fn reset(&mut self) {
        self.rtt.clear();
        self.susp.clear();
        self.global = RttEstimate::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_converges_on_a_steady_signal() {
        let mut e = RttEstimate::default();
        for _ in 0..64 {
            e.observe(10);
        }
        assert_eq!(e.srtt(), 10);
        assert_eq!(e.var(), 0, "steady signal drives the deviation to zero");
        assert_eq!(e.rto(), 10);
        assert_eq!(e.samples(), 64);
    }

    #[test]
    fn estimator_tracks_a_level_shift() {
        let mut e = RttEstimate::default();
        for _ in 0..32 {
            e.observe(10);
        }
        for _ in 0..64 {
            e.observe(80);
        }
        assert!(e.srtt() >= 70, "srtt must follow the new level, got {}", e.srtt());
    }

    #[test]
    fn adaptive_timeout_is_clamped_and_cold_start_conservative() {
        let mut h = NetHealth::new();
        assert_eq!(h.timeout_for(NodeId(1), 512), 512, "no samples ⇒ the fixed ceiling");
        for _ in 0..16 {
            h.observe(NodeId(1), 10);
        }
        let t = h.timeout_for(NodeId(1), 512);
        assert!(t >= h.min_timeout && t < 512, "adaptive timeout {t} must undercut the ceiling");
        // an unknown destination borrows the population estimate
        let u = h.timeout_for(NodeId(99), 512);
        assert!(u < 512);
        assert!(h.hedge_delay(512) < 512 / 4);
    }

    #[test]
    fn slow_nodes_carry_a_standing_penalty() {
        let mut h = NetHealth::new();
        // The grey node's samples interleave with healthy traffic (as
        // they do on a real network), so the global estimator stays
        // anchored near the healthy population mean.
        for round in 0..8u32 {
            for i in 0..20u32 {
                h.observe(NodeId(i), 10 + u64::from(i % 3));
            }
            h.observe(NodeId(42), 90 + u64::from(round % 2));
        }
        assert!(h.is_slow(NodeId(42)));
        assert!(h.is_suspect(NodeId(42)), "a grey node is a suspect from observation alone");
        assert!(!h.is_slow(NodeId(3)));
        assert_eq!(h.suspicion(NodeId(3)), 0);
    }

    #[test]
    fn suspicion_raises_cap_and_decays() {
        let mut h = NetHealth::new();
        let n = NodeId(7);
        for _ in 0..100 {
            h.raise(n);
        }
        assert_eq!(h.suspicion(n), SUSPICION_CAP, "the counter must cap");
        assert!(h.is_suspect(n));
        for _ in 0..SUSPICION_CAP {
            h.alive(n);
        }
        assert_eq!(h.suspicion(n), 0, "a talking node must fully recover");
        assert!(!h.is_suspect(n));
        // hedge raises are gentler than timeout raises
        h.raise_hedge(n);
        assert!(h.suspicion(n) < h.raise);
        h.reset();
        assert_eq!(h.suspicion(n), 0);
        assert_eq!(h.global_estimate().samples(), 0);
        assert_eq!(h.suspects(), 0);
    }
}
