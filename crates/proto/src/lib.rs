//! # dh-proto — the wire-level protocol API
//!
//! The paper's algorithms (§2.2, §6) are *local* protocols: every hop
//! is a message from a server to an entry of its **own** neighbor
//! table. This crate makes that explicit. It sits *below* the network
//! crates and defines
//!
//! * [`wire::Wire`] — the typed RPC vocabulary of the Distance Halving
//!   system (`LookupStep`, `JoinSplit`, `LeaveMerge`, `NeighborDiff`,
//!   `Put`/`Get`/`Remove`, `CacheServe`, and the §6.2 replication
//!   vocabulary: `StoreShare`/`ShareAck`, `FetchShare`/`ShareReply`,
//!   `ShareDigest`/`RepairPull`/`RepairPush`), with per-message byte
//!   accounting;
//! * [`transport::Transport`] — the pluggable delivery substrate.
//!   [`transport::Inline`] is zero-overhead direct dispatch (routes
//!   bit-identical to the synchronous algorithms),
//!   [`transport::Sim`] models per-link latency, loss, duplication and
//!   reordering, [`transport::Recorder`]/[`transport::Replay`] capture
//!   and replay delivery traces for debugging, and
//!   [`fault::Faulty`] turns the §6 failure models (fail-stop, false
//!   message injection) into transport behaviors;
//!   [`fault::ChaosNet`] extends the vocabulary to grey failures —
//!   partitions (incl. asymmetric one-way cuts) with heal events,
//!   per-node service-latency multipliers, scheduled flapping and
//!   loss bursts, all deterministic functions of the chaos seed;
//! * [`health::NetHealth`] — per-destination Jacobson RTT estimators
//!   plus an accrual suspicion failure detector, shared across engine
//!   runs via [`engine::Engine::with_health`]; the opt-in
//!   [`engine::RetryPolicy`] `adaptive`/`hedge` flags turn it into
//!   per-destination timeouts with deterministic backoff + jitter,
//!   suspicion-ordered hedged quorum reads, and load shedding;
//! * [`engine::Engine`] — a deterministic discrete-event runtime
//!   (seeded, `(time, seq)`-ordered clock over lane-FIFO event queues)
//!   that drives per-node protocol state machines over any
//!   [`engine::Topology`]. Each hop decision uses only the current
//!   node's own table, messages carry the op header (attempt/step
//!   stamps make duplicates and stale attempts harmless), and dropped
//!   messages are recovered by end-to-end timeout + retry;
//! * [`shard::run_sharded`] — the multi-core runtime: one batch of
//!   independent ops partitioned across per-shard engines over the
//!   same topology, executed on the workspace thread pool, with
//!   per-op randomness indexed by **global** batch position so the
//!   merged result is bit-identical to the single-engine run under
//!   interleaving-free transports.
//!
//! `dh_dht` implements [`engine::Topology`] for its `DhNetwork` and
//! re-exports [`NodeId`]; higher layers (`storage::Dht`, caching,
//! fault experiments, the `e_msgs` harness) drive their operations
//! through the engine and inherit latency/loss/accounting for free.
//!
//! # Determinism
//!
//! Everything is a pure function of the seeds: events are ordered by
//! `(time, sequence-number)`, per-op randomness comes from
//! `sub_rng(engine_seed, op)`, and transport randomness from the
//! transport's own seed. Same seeds ⇒ identical event trace, message
//! counts and outcomes, independent of platform (the workspace's
//! vendored `rand` is integer-only and stream-stable).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod engine;
pub mod fault;
pub mod health;
pub mod node;
pub mod shard;
pub mod transport;
pub mod wire;

pub use engine::{Engine, EngineStats, NoShares, OpOutcome, Path, RetryPolicy, ShareView, Topology};
pub use fault::{ChaosNet, CutDirection, FaultModel, Faulty, FlapSchedule, LossBurst, Partition};
pub use health::{NetHealth, RttEstimate};
pub use node::NodeId;
pub use shard::{run_sharded, run_sharded_shares, OpSpec, ShardedRun};
pub use transport::{Delivery, Inline, Recorder, Replay, Sim, Trace, Transport};
pub use wire::{Envelope, OpId, Wire};
