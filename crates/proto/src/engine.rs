//! The deterministic discrete-event runtime.
//!
//! An [`Engine`] drives per-node protocol state machines over any
//! [`Topology`] and any [`crate::transport::Transport`]. Time is a
//! `u64` tick counter; events (message deliveries, retry timers) live
//! in a priority queue ordered by `(time, sequence-number)`, so runs
//! are exactly reproducible. Per-op randomness (the Distance Halving
//! Lookup's digit string) comes from `sub_rng(engine_seed, op)`,
//! independent of how ops interleave.
//!
//! Every hop decision uses **only the current node's own table**
//! ([`Topology::local_cover`]) — the engine never consults a global
//! oracle, so what it executes is the paper's local protocol, message
//! by message. Local steps (the message position moves but stays on
//! the same server) cost nothing; a message is sent exactly when the
//! hop crosses to another server, which is why the `Inline` transport
//! reproduces `DhNetwork::lookup` routes bit for bit.
//!
//! Loss is survived end-to-end: each send arms a progress timer
//! stamped with the op's `(attempt, step)`; if the op has not advanced
//! when the timer fires, the origin restarts the operation (fresh
//! digits, same target) up to [`RetryPolicy::max_attempts`] times.
//! Duplicated or reordered deliveries and retransmissions from
//! abandoned attempts are recognised by their stamps and ignored.
//!
//! # Grey-failure tolerance
//!
//! A fixed timeout cannot distinguish "dead" from "slow". Attaching a
//! [`crate::health::NetHealth`] ([`Engine::with_health`]) feeds every
//! planned delivery into per-destination Jacobson RTT estimators and
//! decays/raises per-node suspicion counters; the opt-in
//! [`RetryPolicy`] flags then change behavior:
//!
//! * **`adaptive`** — progress timers use the per-destination bound
//!   (`3·rto`, clamped to the fixed timeout as a ceiling) with
//!   exponential backoff across attempts and deterministic per-attempt
//!   jitter drawn from `sub_rng(seed, op, attempt)` — traces stay
//!   fingerprintable;
//! * **`hedge`** — quorum reads contact the `k` least-suspect covers
//!   first and launch backup `FetchShare`s (wave-stamped) after an
//!   adaptive hedge delay instead of waiting for the full round
//!   timeout; ops whose target clique is majority-suspected fail fast
//!   ([`EngineStats::shed`]) instead of burning the retry budget.
//!
//! With no health attached (or both flags off) the engine behaves —
//! and fingerprints — exactly as before.

use crate::health::NetHealth;
use crate::node::NodeId;
use crate::transport::{Delivery, Transport};
use crate::wire::{Action, Envelope, OpId, RouteKind, Wire};
use cd_core::interval::Interval;
use cd_core::point::Point;
use cd_core::rng::sub_rng;
use cd_core::walk::{prefix_walk_delta, walk_budget, TwoSidedWalk};
use dh_obs::{EventKind as ObsEvent, Obs};
use rand::rngs::StdRng;
use rand::Rng;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::mem;

/// The local view a protocol needs from an overlay: the degree
/// parameter, each server's own segment, and the server's routing
/// primitive (its own table, nothing global). `dh_dht` implements this
/// for `DhNetwork`.
pub trait Topology {
    /// The degree parameter ∆ of the continuous graph.
    fn delta(&self) -> u32;
    /// The segment owned by `n` (starts at `n`'s identifier point).
    fn segment_of(&self, n: NodeId) -> Interval;
    /// The node covering `p` *as visible from `cur`*: `cur` itself if
    /// its segment covers `p`, otherwise the entry of `cur`'s own
    /// neighbor table covering `p`, otherwise `None`.
    fn local_cover(&self, cur: NodeId, p: Point) -> Option<NodeId>;
    /// One greedy routing step: the next continuous position of a
    /// message at `p` heading for `target` (`p ≠ target`), for
    /// topologies routed by [`crate::wire::RouteKind::Greedy`]. The
    /// default panics — only topologies whose continuous graph has
    /// greedy routing (e.g. the Chord-like instance) override it.
    fn greedy_step(&self, _p: Point, _target: Point) -> Point {
        panic!("this topology has no greedy routing")
    }
    /// The ring successor of `n`. The replicated-storage scatter
    /// (§6.2) uses it to enumerate the cover clique of an item — the
    /// `m` consecutive covers starting at the server covering
    /// `h(item)`. The default panics: only topologies that expose
    /// their ring (e.g. `dh_dht::CdNetwork`) support replicated ops.
    fn ring_succ(&self, _n: NodeId) -> NodeId {
        panic!("this topology does not expose its ring")
    }
    /// The ring predecessor of `n` (see [`Self::ring_succ`]): lets a
    /// coordinator that entered the clique mid-span walk back to the
    /// clique primary.
    fn ring_pred(&self, _n: NodeId) -> NodeId {
        panic!("this topology does not expose its ring")
    }
}

/// Read-only view of the share placement the storage layer maintains,
/// consulted by the engine whenever a [`Wire::FetchShare`] arrives at
/// a cover: the engine models the message flow of the §6.2 clique
/// protocol, the actual share bytes live above it (`dh_replica`).
pub trait ShareView {
    /// The wire length in bytes of share `idx` of item `key` if
    /// `node` currently holds it (latest version only), else `None`.
    fn share_len(&self, node: NodeId, key: u64, idx: u8) -> Option<u32>;
}

/// The empty share store: no node holds anything. What [`Engine::run`]
/// and [`Engine::run_with`] consult — sufficient for every non-
/// replicated protocol and for replicated *writes*.
pub struct NoShares;

impl ShareView for NoShares {
    fn share_len(&self, _node: NodeId, _key: u64, _idx: u8) -> Option<u32> {
        None
    }
}

/// The wire-level view of a route: servers visited (consecutive
/// duplicates collapsed) and the continuous position of the message at
/// each. Field-for-field the same record as `dh_dht::Route`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Path {
    /// Servers visited, in order.
    pub nodes: Vec<NodeId>,
    /// Continuous position of the message at each visited server.
    pub points: Vec<Point>,
    /// Index into `nodes` where phase 2 began (DH routing only).
    pub phase2_start: Option<usize>,
}

impl Path {
    fn reset(&mut self, source: NodeId, at: Point) {
        self.nodes.clear();
        self.points.clear();
        self.phase2_start = None;
        self.nodes.push(source);
        self.points.push(at);
    }

    fn push(&mut self, node: NodeId, at: Point) {
        if *self.nodes.last().expect("path never empty") != node {
            self.nodes.push(node);
            self.points.push(at);
        } else {
            *self.points.last_mut().expect("path never empty") = at;
        }
    }

    /// Number of hops (messages sent on the successful attempt).
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// The server the route ended at.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path never empty")
    }
}

/// End-to-end retransmission policy.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Ticks without progress before the origin restarts the op. In
    /// adaptive mode this is the *ceiling* (and the cold-start value);
    /// per-destination estimates undercut it, never exceed it.
    pub timeout: u64,
    /// Attempts (including the first) before the op is abandoned.
    pub max_attempts: u32,
    /// Derive progress timeouts from the attached
    /// [`crate::health::NetHealth`] (per-destination Jacobson bound,
    /// exponential backoff, deterministic per-attempt jitter). No-op
    /// unless a health tracker is attached.
    pub adaptive: bool,
    /// Hedge quorum reads (suspicion-ordered staged fan-out with
    /// backup fetches after an adaptive hedge delay) and shed ops
    /// whose target clique is majority-suspected. No-op unless a
    /// health tracker is attached.
    pub hedge: bool,
}

impl RetryPolicy {
    /// A fixed-timeout policy with no adaptive behavior — the classic
    /// pre-health engine semantics.
    pub const fn fixed(timeout: u64, max_attempts: u32) -> Self {
        RetryPolicy { timeout, max_attempts, adaptive: false, hedge: false }
    }

    /// Fast-failing: a short timeout and a small retry budget, for
    /// callers that prefer an error over a long stall (interactive
    /// paths, tests asserting failure).
    pub const fn aggressive() -> Self {
        RetryPolicy::fixed(64, 3)
    }

    /// Patient: a generous timeout ceiling and a deep retry budget,
    /// for lossy/slow substrates where completion beats latency
    /// (benches, repair, bulk drivers).
    pub const fn patient() -> Self {
        RetryPolicy::fixed(4_096, 8)
    }

    /// Enable adaptive per-destination timeouts (builder-style).
    pub const fn adaptive(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// Enable hedged quorum reads + load shedding. Hedging needs the
    /// RTT estimators anyway, so this implies [`Self::adaptive`].
    pub const fn hedged(mut self) -> Self {
        self.hedge = true;
        self.adaptive = true;
        self
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::fixed(512, 5)
    }
}

/// Global counters of one engine run. Counters of independent runs
/// (e.g. the shards of [`crate::shard::run_sharded`]) merge by
/// addition: see [`EngineStats::merge`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Messages handed to the transport.
    pub msgs: u64,
    /// Modeled bytes handed to the transport.
    pub bytes: u64,
    /// Deliveries that reached a receiver.
    pub delivered: u64,
    /// Sends the transport lost entirely.
    pub dropped: u64,
    /// Extra arrivals beyond the first (duplication).
    pub duplicated: u64,
    /// Deliveries ignored because their `(attempt, step)` stamp was
    /// stale (old attempt, duplicate, or reordered-behind).
    pub stale: u64,
    /// Op restarts triggered by progress timeouts.
    pub retries: u64,
    /// Ops that completed.
    pub completed: u64,
    /// Ops abandoned after `max_attempts`.
    pub failed: u64,
    /// Backup fetches launched by hedged quorum reads.
    pub hedged: u64,
    /// Ops fast-failed because their target clique was
    /// majority-suspected (counted in `failed` too).
    pub shed: u64,
}

impl EngineStats {
    /// Accumulate the counters of another (independent) engine run —
    /// every field is a plain count, so shard stats merge by addition.
    pub fn merge(&mut self, other: &EngineStats) {
        self.msgs += other.msgs;
        self.bytes += other.bytes;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.stale += other.stale;
        self.retries += other.retries;
        self.completed += other.completed;
        self.failed += other.failed;
        self.hedged += other.hedged;
        self.shed += other.shed;
    }

    /// Push every counter into a [`dh_obs`] registry under the
    /// `engine/…` namespace, labelled by `label` (0 for "the run";
    /// a scenario can use it to split foreground from repair traffic).
    /// Counters accumulate across engine runs, which is exactly what
    /// a scenario spanning many short-lived engines wants.
    pub fn export(&self, obs: &Obs, label: u64) {
        obs.add_many(&[
            ("engine/msgs", label, self.msgs),
            ("engine/bytes", label, self.bytes),
            ("engine/delivered", label, self.delivered),
            ("engine/dropped", label, self.dropped),
            ("engine/duplicated", label, self.duplicated),
            ("engine/stale", label, self.stale),
            ("engine/retries", label, self.retries),
            ("engine/completed", label, self.completed),
            ("engine/failed", label, self.failed),
            ("engine/hedged", label, self.hedged),
            ("engine/shed", label, self.shed),
        ]);
    }
}

/// The final record of one operation.
#[derive(Clone, Debug)]
pub struct OpOutcome {
    /// What the op did at its destination.
    pub action: Action,
    /// Did it complete (false ⇒ retry budget exhausted)?
    pub ok: bool,
    /// The server that answered (when `ok`).
    pub dest: Option<NodeId>,
    /// The route of the successful attempt.
    pub path: Path,
    /// Messages sent for this op, all attempts included.
    pub msgs: u64,
    /// Bytes sent for this op, all attempts included.
    pub bytes: u64,
    /// Attempts used (1 = succeeded first try).
    pub attempts: u32,
    /// Completion time on the engine clock.
    pub completed_at: Option<u64>,
    /// Whether any delivery the successful attempt consumed was
    /// corrupted in flight (false message injection).
    pub corrupt: bool,
    /// For `CacheServe`: the path-tree level that served the request.
    pub serve_level: Option<u32>,
    /// For `CacheServe`: the tree node (continuous point) that served.
    pub serve_at: Option<Point>,
    /// DH routing: the path-tree level at which phase 2 entered the
    /// climb (the trace length − 1).
    pub entered_at: Option<u32>,
    /// Replicated ops: the cover clique the scatter fanned out to —
    /// share index `i` belongs on `holders[i]`. Empty otherwise.
    pub holders: Vec<NodeId>,
    /// Replicated ops: for `PutShares`, the share indices whose
    /// [`Wire::StoreShare`] arrived intact at their holder (all
    /// attempts — these shares really are placed); for `GetShares`,
    /// the indices gathered on the completing attempt, in arrival
    /// order (the first `k` reconstruct at quorum).
    pub shares: Vec<u8>,
}

/// Per-op routing machine state.
enum Machine {
    /// Waiting for its start event.
    Pending,
    /// Fast Lookup backward walk: current position, hops remaining.
    Fast { p: Point, remaining: u32 },
    /// Fast Lookup ring correction toward the true cover.
    FastRing,
    /// DH lookup phase 1 (forward along `p_t`).
    Dh1,
    /// DH lookup phase 2 (retrace `q_t … q_0`); `idx` indexes `trace`.
    Dh2 { idx: usize },
    /// Greedy routing: current continuous position of the message.
    Greedy { p: Point },
    /// Replicated op (§6.2): the route reached the clique and the
    /// coordinator fanned `StoreShare`/`FetchShare` out to the covers;
    /// the op now waits for its quorum of acks/replies.
    Scatter,
    /// Completed.
    Done,
    /// Abandoned after retry exhaustion.
    Failed,
}

/// Scatter-phase bookkeeping of a replicated op: the clique and which
/// share indices have been placed, acknowledged or gathered. Boxed
/// into the op lazily — non-replicated ops never allocate it.
#[derive(Default)]
struct ReplicaState {
    /// The covers of the item, in share-index order.
    holders: Vec<NodeId>,
    /// Indices whose `StoreShare` arrived intact (all attempts).
    stored: Vec<u8>,
    /// Indices acked to the coordinator on the current attempt.
    acked: Vec<u8>,
    /// Indices that answered a fetch on the current attempt.
    replied: Vec<u8>,
    /// Indices found on the current attempt, in arrival order.
    gathered: Vec<u8>,
    /// Contact order (share indices) of the current attempt: identity
    /// for plain scatters, suspicion-sorted (coordinator first) when
    /// hedging.
    contact_order: Vec<u8>,
    /// Entries of `contact_order` contacted so far — hedged reads
    /// contact lazily, everything else contacts all upfront.
    contacted: usize,
    /// Hedge wave counter stamped into backup `FetchShare`s.
    wave: u8,
}

struct Op {
    kind: RouteKind,
    action: Action,
    from: NodeId,
    target: Point,
    rng: StdRng,
    machine: Machine,
    cur: NodeId,
    attempt: u32,
    step: u32,
    /// Fast Lookup plan: walk start and length (computed once).
    plan: Option<(Point, u32)>,
    walk: TwoSidedWalk,
    trace: Vec<Point>,
    path: Path,
    msgs: u64,
    bytes: u64,
    corrupt: bool,
    completed_at: Option<u64>,
    serve_level: Option<u32>,
    serve_at: Option<Point>,
    entered_at: Option<u32>,
    /// The node the op's last routed send is waiting on — whom the
    /// failure detector blames if the progress timer fires.
    waiting_on: Option<NodeId>,
    /// Pre-planned walk digits for a hedged DH op
    /// ([`Engine::plan_walk`]): a route vetted against the failure
    /// detector before the first send. Consumed digit-by-digit; the
    /// op's own rng takes over past its end, and a retry re-plans
    /// (the stall falsified the vetting).
    planned: Vec<u32>,
    /// Hedged scatter: whether this attempt already handed
    /// coordination off to a less-suspect cover (at most once).
    handed_off: bool,
    /// In-place retransmissions of the current routed step (hedged
    /// spurious-timeout protection; reset on every fresh step).
    resends: u8,
    /// The point of the last routed send — what an in-place
    /// retransmission of the current step carries again.
    last_at: Point,
    replica: Option<Box<ReplicaState>>,
}

enum EventKind {
    Start { op: OpId },
    Deliver { env: Envelope },
    Timer { op: OpId, attempt: u32, step: u32 },
    /// Hedge checkpoint of a staged quorum read: if the read is still
    /// short, blame the silent covers and contact the next one.
    Hedge { op: OpId, attempt: u32 },
}

struct Event {
    at: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Which FIFO lane of the [`EventQueue`] a push is headed for.
#[derive(Clone, Copy)]
enum Lane {
    /// Deliveries scheduled for the current tick (every `Inline` send).
    Immediate,
    /// Progress/hedge timers (a fixed retry delay ⇒ monotone pushes;
    /// adaptive timeouts vary per destination and simply spill).
    Timer,
    /// Op start events (drivers submit in nondecreasing time order).
    Start,
}

/// The engine's event queue: three sorted FIFO lanes plus a spill
/// heap, popping in exactly the global `(time, seq)` order the old
/// single `BinaryHeap` produced — but with O(1) push/pop on every
/// common path.
///
/// The tick domain is small and regular: deliveries under `Inline`
/// land *at the current tick*, progress timers always fire a fixed
/// `retry.timeout` after the (monotone) clock, and drivers submit ops
/// at nondecreasing start times. Each of those streams is therefore
/// already sorted by `(time, seq)` and lives in a `VecDeque`; a push
/// that would break its lane's ordering (e.g. a jittered `Sim`
/// delivery) spills to the [`BinaryHeap`], which then only ever holds
/// the few genuinely unordered in-flight events. Correctness never
/// depends on the monotonicity heuristics — the pop compares all four
/// fronts.
#[derive(Default)]
struct EventQueue {
    immediate: VecDeque<Event>,
    timers: VecDeque<Event>,
    starts: VecDeque<Event>,
    heap: BinaryHeap<Event>,
}

impl EventQueue {
    /// Push into `lane` if that keeps the lane sorted, else spill to
    /// the heap.
    fn push(&mut self, ev: Event, lane: Lane) {
        let q = match lane {
            Lane::Immediate => &mut self.immediate,
            Lane::Timer => &mut self.timers,
            Lane::Start => &mut self.starts,
        };
        match q.back() {
            Some(back) if (back.at, back.seq) > (ev.at, ev.seq) => self.heap.push(ev),
            _ => q.push_back(ev),
        }
    }

    /// Pop the globally earliest event by `(time, seq)`.
    fn pop(&mut self) -> Option<Event> {
        // the best lane front, if any
        let mut best: Option<(u64, u64, Lane)> = None;
        for (lane, q) in [
            (Lane::Immediate, &self.immediate),
            (Lane::Timer, &self.timers),
            (Lane::Start, &self.starts),
        ] {
            if let Some(ev) = q.front() {
                if best.is_none_or(|(at, seq, _)| (ev.at, ev.seq) < (at, seq)) {
                    best = Some((ev.at, ev.seq, lane));
                }
            }
        }
        // compare against the spill heap's minimum
        if let Some(top) = self.heap.peek() {
            if best.is_none_or(|(at, seq, _)| (top.at, top.seq) < (at, seq)) {
                return self.heap.pop();
            }
        }
        best.and_then(|(_, _, lane)| match lane {
            Lane::Immediate => self.immediate.pop_front(),
            Lane::Timer => self.timers.pop_front(),
            Lane::Start => self.starts.pop_front(),
        })
    }
}

/// The deterministic event-driven runtime. See the module docs.
pub struct Engine<'g, G: Topology, T: Transport> {
    net: &'g G,
    transport: T,
    seed: u64,
    clock: u64,
    seq: u64,
    queue: EventQueue,
    ops: Vec<Op>,
    /// Retransmission policy for routed ops.
    pub retry: RetryPolicy,
    /// Global counters.
    pub stats: EngineStats,
    /// Failure detector / RTT tracker shared across engine runs (the
    /// layer above owns it; `None` ⇒ classic fixed-timeout behavior).
    health: Option<&'g mut NetHealth>,
    /// Flight-recorder handle ([`dh_obs`]). Off by default: every
    /// emit is one `Option` test, so an un-instrumented run schedules
    /// bit-identically to a build without the recorder at all.
    obs: Obs,
    /// Buffered protocol-plane events, drained into the recorder
    /// under one lock at the end of each run: the per-event cost on
    /// the hot path is an `Option` test plus a `Vec` push.
    ev_buf: Vec<(u64, u32, ObsEvent)>,
    plan_buf: Vec<Delivery>,
    /// Recycled phase-2 trace buffers (released when an op completes,
    /// claimed by the next op entering phase 2) — the DH hot path
    /// allocates its trace once per engine, not once per op.
    trace_pool: Vec<Vec<Point>>,
}

impl<'g, G: Topology, T: Transport> Engine<'g, G, T> {
    /// A fresh engine at tick 0 over `net` and `transport`, with all
    /// per-op randomness derived from `seed`.
    pub fn new(net: &'g G, transport: T, seed: u64) -> Self {
        Engine {
            net,
            transport,
            seed,
            clock: 0,
            seq: 0,
            queue: EventQueue::default(),
            ops: Vec::new(),
            retry: RetryPolicy::default(),
            stats: EngineStats::default(),
            health: None,
            obs: Obs::off(),
            ev_buf: Vec::new(),
            plan_buf: Vec::new(),
            trace_pool: Vec::new(),
        }
    }

    /// Set the retransmission policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attach a failure detector / RTT tracker that outlives this
    /// engine run. Observation is unconditional (and trace-neutral:
    /// it never changes what the engine schedules); the adaptive and
    /// hedge behaviors additionally require the corresponding
    /// [`RetryPolicy`] flags.
    pub fn with_health(mut self, health: &'g mut NetHealth) -> Self {
        self.health = Some(health);
        self
    }

    /// Attach a flight recorder ([`dh_obs::Obs`]). Emission is purely
    /// observational — no event changes what the engine schedules and
    /// no emission consumes engine randomness — so an instrumented
    /// run's wire trace is bit-identical to an un-instrumented one.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        // recycled (cache-warm) buffer: the run's events accumulate
        // without realloc chains or fresh page faults
        self.ev_buf = obs.take_buf();
        self.obs = obs;
        self
    }

    /// The current engine time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Give back the transport (e.g. to read a recorded trace).
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// Submit an operation starting now. Returns its handle.
    pub fn submit(&mut self, kind: RouteKind, from: NodeId, target: Point, action: Action) -> OpId {
        self.submit_at(self.clock, kind, from, target, action)
    }

    /// Submit an operation whose origin starts acting at time `t`
    /// (staggered arrivals). The op's randomness is derived from its
    /// local id (`sub_rng(seed, id)`).
    pub fn submit_at(
        &mut self,
        t: u64,
        kind: RouteKind,
        from: NodeId,
        target: Point,
        action: Action,
    ) -> OpId {
        let idx = self.ops.len() as u64;
        self.submit_at_indexed(t, kind, from, target, action, idx)
    }

    /// [`Self::submit_at`] with an explicit randomness index: the op
    /// draws its digits from `sub_rng(seed, rng_index)` instead of its
    /// local id. This is what lets a sharded run ([`crate::shard`])
    /// give every op the *same* random choices it would have in a
    /// single-engine run — the index is the op's global position in
    /// the batch, not its position within one shard.
    pub fn submit_at_indexed(
        &mut self,
        t: u64,
        kind: RouteKind,
        from: NodeId,
        target: Point,
        action: Action,
        rng_index: u64,
    ) -> OpId {
        let id = self.ops.len() as OpId;
        self.ops.push(Op {
            kind,
            action,
            from,
            target,
            rng: sub_rng(self.seed, rng_index),
            machine: Machine::Pending,
            cur: from,
            attempt: 1,
            step: 0,
            plan: None,
            walk: TwoSidedWalk::new(Point(0), Point(0), 2),
            trace: Vec::new(),
            path: Path::default(),
            msgs: 0,
            bytes: 0,
            corrupt: false,
            completed_at: None,
            serve_level: None,
            serve_at: None,
            entered_at: None,
            waiting_on: None,
            planned: Vec::new(),
            handed_off: false,
            resends: 0,
            last_at: Point(0),
            replica: None,
        });
        let at = t.max(self.clock);
        self.push_event(at, EventKind::Start { op: id }, Lane::Start);
        id
    }

    /// Send a bare (non-routed) protocol message — churn notifications
    /// and the like. Counted and traced like any other send; delivery
    /// has no state machine to drive.
    pub fn send(&mut self, src: NodeId, dst: NodeId, msg: Wire) {
        let bytes = msg.wire_bytes();
        let env = Envelope { src, dst, msg, corrupt: false };
        self.dispatch(env, bytes, 0);
    }

    /// Run to quiescence with no cache layer and no share store
    /// attached.
    pub fn run(&mut self) {
        self.run_core(&mut |_, _, _, _| false, &NoShares);
    }

    /// Run to quiescence. `serve(node, item, point, level)` is
    /// consulted at every path-tree node a `CacheServe` op visits on
    /// its phase-2 climb (entry node included); returning `true`
    /// serves the request there and completes the op. The climb's root
    /// (level 0) completes the op regardless, mirroring "the root is
    /// always active".
    pub fn run_with(&mut self, mut serve: impl FnMut(NodeId, u64, Point, u32) -> bool) {
        self.run_core(&mut serve, &NoShares);
    }

    /// Run to quiescence with a share store attached: every
    /// [`Wire::FetchShare`] a cover receives is answered by consulting
    /// `view` — what quorum reads ([`Action::GetShares`]) need.
    pub fn run_with_shares<V: ShareView>(&mut self, view: &V) {
        self.run_core(&mut |_, _, _, _| false, view);
    }

    fn run_core<V: ShareView>(
        &mut self,
        serve: &mut impl FnMut(NodeId, u64, Point, u32) -> bool,
        view: &V,
    ) {
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.at >= self.clock, "time went backwards");
            debug_assert!(ev.seq < self.seq, "event from the future");
            self.clock = ev.at;
            match ev.kind {
                EventKind::Start { op } => {
                    self.start_op(op);
                    self.advance_or_enter(op, serve, view);
                }
                EventKind::Deliver { env } => self.deliver(env, serve, view),
                EventKind::Timer { op, attempt, step } => self.timer(op, attempt, step, serve, view),
                EventKind::Hedge { op, attempt } => self.hedge_fire(op, attempt),
            }
        }
        if !self.ev_buf.is_empty() {
            self.obs.emit_batch(&mut self.ev_buf);
        }
    }

    /// The outcome of a submitted op (meaningful after [`Self::run`]).
    /// Clones the route; completion paths that consume the outcome
    /// should prefer [`Self::take_outcome`], which hands the route out
    /// by move.
    pub fn outcome(&self, id: OpId) -> OpOutcome {
        let op = &self.ops[id as usize];
        let mut out = self.outcome_sans_path(op);
        out.path = op.path.clone();
        out
    }

    /// [`Self::outcome`] without the `path.clone()`: moves the route
    /// buffers out of the op. Call at most once per op — a second call
    /// returns the metrics again but an empty route.
    pub fn take_outcome(&mut self, id: OpId) -> OpOutcome {
        let op = &mut self.ops[id as usize];
        let path = mem::take(&mut op.path);
        let mut out = self.outcome_sans_path(&self.ops[id as usize]);
        out.path = path;
        out
    }

    fn outcome_sans_path(&self, op: &Op) -> OpOutcome {
        let ok = matches!(op.machine, Machine::Done);
        let (holders, shares) = match &op.replica {
            Some(rep) => (
                rep.holders.clone(),
                match op.action {
                    Action::PutShares { .. } => rep.stored.clone(),
                    _ => rep.gathered.clone(),
                },
            ),
            None => (Vec::new(), Vec::new()),
        };
        OpOutcome {
            action: op.action,
            ok,
            // the path may already have been taken; the destination is
            // wherever the op's message last sat
            dest: ok.then_some(op.cur),
            path: Path::default(),
            msgs: op.msgs,
            bytes: op.bytes,
            attempts: op.attempt,
            completed_at: op.completed_at,
            corrupt: op.corrupt,
            serve_level: op.serve_level,
            serve_at: op.serve_at,
            entered_at: op.entered_at,
            holders,
            shares,
        }
    }

    /// Number of submitted ops.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn push_event(&mut self, at: u64, kind: EventKind, lane: Lane) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind }, lane);
    }

    /// Hand `env` to the transport and schedule its arrivals. `bytes`
    /// is `env.msg.wire_bytes()`, computed once by the caller (it also
    /// charges the per-op accounting with it); `attempt` stamps the
    /// recorder's Send event (0 for bare sends).
    /// Buffer one flight-recorder event (flushed under a single
    /// recorder lock when the run completes).
    #[inline]
    fn note(&mut self, at: u64, attempt: u32, kind: ObsEvent) {
        if self.obs.is_on() {
            self.ev_buf.push((at, attempt, kind));
        }
    }

    fn dispatch(&mut self, env: Envelope, bytes: u64, attempt: u32) {
        self.stats.msgs += 1;
        self.stats.bytes += bytes;
        self.note(
            self.clock,
            attempt,
            ObsEvent::Send { src: env.src.0, dst: env.dst.0, bytes: bytes as u32 },
        );
        let mut plan = mem::take(&mut self.plan_buf);
        plan.clear();
        self.transport.plan(self.clock, &env, &mut plan);
        match plan.len() {
            0 => self.stats.dropped += 1,
            n => self.stats.duplicated += (n - 1) as u64,
        }
        // feed the failure detector's RTT estimators with the planned
        // delivery delays — pure observation, never changes the plan.
        // Grey slowness rides whichever endpoint is slow, so hedged
        // runs attribute the delay to both: a slow *sender* gets
        // flagged too, instead of smearing its delay onto whoever it
        // talks to.
        if let Some(h) = self.health.as_deref_mut() {
            for d in &plan {
                let delay = d.at.saturating_sub(self.clock);
                h.observe(env.dst, delay);
                if self.retry.hedge && env.src != env.dst {
                    h.observe(env.src, delay);
                }
            }
        }
        for d in &plan {
            debug_assert!(d.at >= self.clock, "transport scheduled into the past");
            let env = Envelope { corrupt: env.corrupt || d.corrupt, ..env };
            self.push_event(d.at, EventKind::Deliver { env }, Lane::Immediate);
        }
        self.plan_buf = plan;
    }

    /// Initialize an op's routing state at its origin (attempt 1 or a
    /// retry): reset the path and plan/re-plan the walk.
    fn start_op(&mut self, id: OpId) {
        let delta = self.net.delta();
        // claim a recycled phase-2 trace buffer for DH ops that have
        // none yet (released again when the op completes)
        if matches!(self.ops[id as usize].kind, RouteKind::DistanceHalving)
            && self.ops[id as usize].trace.capacity() == 0
        {
            if let Some(buf) = self.trace_pool.pop() {
                self.ops[id as usize].trace = buf;
            }
        }
        // a hedged DH op pre-plans its digit string against the
        // detector — the initial attempt and every from-origin retry
        // alike ([`Self::plan_walk`])
        let planned = {
            let op = &self.ops[id as usize];
            if self.retry.hedge && matches!(op.kind, RouteKind::DistanceHalving) {
                self.plan_walk(op.from, op.target, id, op.attempt)
            } else {
                Vec::new()
            }
        };
        let op = &mut self.ops[id as usize];
        op.cur = op.from;
        op.handed_off = false;
        op.planned = planned;
        let seg = self.net.segment_of(op.from);
        match op.kind {
            RouteKind::Fast => {
                op.path.reset(op.from, seg.midpoint());
                let (h, t) = *op.plan.get_or_insert_with(|| {
                    // minimal t with w(σ(z)_t, target) ∈ s(V)
                    let z = seg.midpoint();
                    let budget = walk_budget(1, delta).max(2);
                    let mut t = 0u32;
                    let mut h = op.target;
                    while !seg.contains(h) {
                        t += 1;
                        assert!(
                            (t as usize) <= budget,
                            "Fast Lookup failed to land in own segment after {t} steps"
                        );
                        h = prefix_walk_delta(op.target, z, t as usize, delta);
                    }
                    (h, t)
                });
                // a 0-length walk is the local hit of fast_plan's early
                // exit; the ring-correction state completes it in place
                op.machine = if t == 0 && seg.contains(op.target) {
                    Machine::FastRing
                } else {
                    Machine::Fast { p: h, remaining: t }
                };
            }
            RouteKind::DistanceHalving => {
                // the walk starts at the node's identifier point
                let x = seg.start();
                op.path.reset(op.from, x);
                op.walk.reset(x, op.target, delta);
                op.machine = Machine::Dh1;
            }
            RouteKind::Greedy => {
                // the message starts at the node's identifier point
                let x = seg.start();
                op.path.reset(op.from, x);
                op.machine = Machine::Greedy { p: x };
            }
        }
    }

    /// Take local steps for `op` at its current node until it either
    /// completes or must send a message (sent here), then return.
    fn advance<V: ShareView>(
        &mut self,
        id: OpId,
        serve: &mut impl FnMut(NodeId, u64, Point, u32) -> bool,
        view: &V,
    ) {
        loop {
            let op = &mut self.ops[id as usize];
            let cur = op.cur;
            match op.machine {
                Machine::Pending | Machine::Done | Machine::Failed => return,
                // waiting for acks/replies from the clique
                Machine::Scatter => return,
                Machine::Fast { p, remaining } => {
                    if remaining == 0 {
                        op.machine = Machine::FastRing;
                        continue;
                    }
                    let next_p = p.backward_delta(self.net.delta());
                    op.machine = Machine::Fast { p: next_p, remaining: remaining - 1 };
                    if self.hop(id, next_p) {
                        return; // message in flight
                    }
                }
                Machine::FastRing => {
                    let seg = self.net.segment_of(cur);
                    if seg.contains(op.target) {
                        op.path.push(cur, op.target);
                        self.arrive(id, view);
                        return;
                    }
                    // fixed-point truncation correction along the ring
                    let succ_start = seg.end();
                    if self.hop(id, succ_start) {
                        return;
                    }
                }
                Machine::Dh1 => {
                    let q = op.walk.target();
                    match self.net.local_cover(cur, q) {
                        Some(next) => {
                            // phase 1 ends; the message (if any) carries
                            // the phase-2 entry
                            op.path.push(next, q);
                            op.path.phase2_start = Some(op.path.nodes.len() - 1);
                            op.walk.target_backtrace_into(&mut op.trace);
                            op.entered_at = Some((op.trace.len() - 1) as u32);
                            op.machine = Machine::Dh2 { idx: 0 };
                            if next != cur {
                                self.send_step(id, next, q);
                                return;
                            }
                        }
                        None => {
                            let delta = self.net.delta();
                            assert!(
                                op.walk.steps() < 130,
                                "phase 1 failed to converge (∆ = {delta})"
                            );
                            // a planner-vetted digit string takes
                            // precedence; past its end (or after a
                            // retry cleared it) the op draws its own
                            if let Some(&d) = op.planned.get(op.walk.steps()) {
                                op.walk.step_with(d);
                                let p = op.walk.source();
                                if self.hop(id, p) {
                                    return;
                                }
                                continue;
                            }
                            // hedged mode steers the walk's digit away
                            // from covers the detector holds suspect:
                            // any digit halves the gap, so the walk is
                            // still a valid §2.2.2 descent — the drawn
                            // digit stays the deterministic default
                            let d0 = op.rng.gen_range(0..delta);
                            let mut d = d0;
                            if self.retry.hedge {
                                if let Some(h) = self.health.as_deref() {
                                    for off in 0..delta {
                                        let cand = (d0 + off) % delta;
                                        let p = op.walk.source().child(cand, delta);
                                        match self.net.local_cover(cur, p) {
                                            Some(n) if !h.is_suspect(n) => {
                                                d = cand;
                                                break;
                                            }
                                            _ => {}
                                        }
                                    }
                                }
                            }
                            op.walk.step_with(d);
                            let p = op.walk.source();
                            if self.hop(id, p) {
                                return;
                            }
                        }
                    }
                }
                Machine::Greedy { p } => {
                    if self.net.segment_of(cur).contains(op.target) {
                        op.path.push(cur, op.target);
                        self.arrive(id, view);
                        return;
                    }
                    // cur covers p and not the target, so p ≠ target
                    let next_p = self.net.greedy_step(p, op.target);
                    op.machine = Machine::Greedy { p: next_p };
                    if self.hop(id, next_p) {
                        return;
                    }
                }
                Machine::Dh2 { idx } => {
                    // visit the current trace node (cache climbs serve
                    // here), then hop to the next one
                    let t = op.trace.len() - 1;
                    let q = op.trace[idx];
                    let level = (t - idx) as u32;
                    if let Action::CacheServe { item } = op.action {
                        // (a served op is completed on the spot, so this
                        // branch never sees serve_level already set)
                        if serve(cur, item, q, level) || level == 0 {
                            op.serve_level = Some(level);
                            op.serve_at = Some(q);
                            self.complete(id);
                            return;
                        }
                    }
                    if idx == t {
                        debug_assert!(self.net.segment_of(cur).contains(op.target));
                        self.arrive(id, view);
                        return;
                    }
                    // (the retrace offers no local detour: each
                    // backward hop is the doubling map, so its next
                    // cover is forced — suspect avoidance happens when
                    // the digit string is planned, not here)
                    op.machine = Machine::Dh2 { idx: idx + 1 };
                    let next_q = op.trace[idx + 1];
                    if self.hop(id, next_q) {
                        return;
                    }
                }
            }
        }
    }

    /// Move `op`'s message to the node covering `p`, using only the
    /// current node's own table. Returns `true` iff a message was sent
    /// (the op then waits for its delivery); `false` means the
    /// position moved but stayed on the same server.
    fn hop(&mut self, id: OpId, p: Point) -> bool {
        let op = &self.ops[id as usize];
        let cur = op.cur;
        let next = self.net.local_cover(cur, p).unwrap_or_else(|| {
            panic!(
                "missing discrete edge: {cur} (segment {:?}) has no table entry covering {:?}",
                self.net.segment_of(cur),
                p
            )
        });
        self.ops[id as usize].path.push(next, p);
        if next == cur {
            return false;
        }
        self.send_step(id, next, p);
        true
    }

    /// The `LookupStep` carrying the op's *current* step state — built
    /// the same way for a fresh send and for an in-place
    /// retransmission (identical stamps, so either delivery advances
    /// the op).
    fn step_msg(&self, id: OpId, at: Point) -> Wire {
        let op = &self.ops[id as usize];
        let digits = match op.kind {
            RouteKind::Fast | RouteKind::Greedy => 0,
            RouteKind::DistanceHalving => match op.machine {
                // phase 2 deletes one digit of τ per hop
                Machine::Dh2 { idx } => (op.trace.len() - 1 - idx) as u32,
                _ => op.walk.steps() as u32,
            },
        };
        Wire::LookupStep {
            op: id,
            attempt: op.attempt,
            step: op.step,
            at,
            digits,
            action: op.action,
        }
    }

    /// Emit the op's next `LookupStep` to `next` and arm the progress
    /// timer.
    fn send_step(&mut self, id: OpId, next: NodeId, at: Point) {
        {
            let op = &mut self.ops[id as usize];
            op.step += 1;
            op.resends = 0;
            op.last_at = at;
        }
        let msg = self.step_msg(id, at);
        let bytes = msg.wire_bytes();
        let op = &mut self.ops[id as usize];
        op.msgs += 1;
        op.bytes += bytes;
        let (src, attempt, step) = (op.cur, op.attempt, op.step);
        op.waiting_on = Some(next);
        // the timeout is decided with what was known *before* this
        // send's own delivery is observed
        let timeout = self.progress_timeout(id, next, attempt);
        self.dispatch(Envelope { src, dst: next, msg, corrupt: false }, bytes, attempt);
        self.note(
            self.clock,
            attempt,
            ObsEvent::TimerArm { dst: next.0, deadline: self.clock + timeout },
        );
        self.push_event(
            self.clock + timeout,
            EventKind::Timer { op: id, attempt, step },
            Lane::Timer,
        );
    }

    /// Exponential backoff across attempts plus deterministic
    /// per-`(op, attempt)` jitter on top of `base`, clamped to the
    /// policy ceiling. The jitter stream is `sub_rng(seed, op, attempt)`
    /// — a pure function of the engine seed, so traces stay
    /// fingerprintable.
    fn backed_off(&self, base: u64, id: OpId, attempt: u32) -> u64 {
        let ceiling = self.retry.timeout;
        let shift = attempt.saturating_sub(1).min(4);
        let backed = base.saturating_mul(1u64 << shift).min(ceiling);
        let span = (backed / 4).max(1);
        let mut rng = sub_rng(
            self.seed ^ 0xBACC_0FF5,
            (u64::from(id) << 32) | u64::from(attempt),
        );
        (backed + rng.gen_range(0..span)).min(ceiling)
    }

    /// The progress timeout for a send toward `dst`: the fixed policy
    /// timeout, or — in adaptive mode with health attached — the
    /// per-destination Jacobson bound with backoff and jitter.
    fn progress_timeout(&self, id: OpId, dst: NodeId, attempt: u32) -> u64 {
        let ceiling = self.retry.timeout;
        if !self.retry.adaptive {
            return ceiling;
        }
        let Some(h) = self.health.as_deref() else { return ceiling };
        let base = h.timeout_for(dst, ceiling);
        if self.retry.hedge {
            // a hedged route stalls one healthy-sized wait at most,
            // every attempt: a premature fire costs one in-place
            // retransmission (position kept), a true stall takes the
            // re-planning detour around the blamed cover
            // ([`Self::plan_walk`]) — so neither a slow cover's own
            // inflated timeout nor exponential backoff should delay
            // either. Flat cap, per-attempt jitter only.
            let capped = base.min(h.route_cap(ceiling));
            let span = (capped / 4).max(1);
            let mut rng = sub_rng(
                self.seed ^ 0xBACC_0FF5,
                (u64::from(id) << 32) | u64::from(attempt),
            );
            return (capped + rng.gen_range(0..span)).min(ceiling);
        }
        self.backed_off(base, id, attempt)
    }

    /// Pre-plan a hedged Distance-Halving walk: simulate a few
    /// candidate digit strings over the segment map, price every cover
    /// each candidate visits — descent *and* the forced retrace orbit
    /// — with the detector's delay estimators, and return the cheapest
    /// string. The retrace offers no mid-route detour (each backward
    /// hop is the doubling map, digit-independent), so the digit
    /// string τ is the *only* routing freedom the §2.2.2 walk has;
    /// pricing whole candidates before the first send is how lookup
    /// planning consults the detector. A cover is priced at its
    /// personal smoothed delay when any sample exists (one slow
    /// delivery is enough to steer away — far earlier than the
    /// suspicion threshold), the population's otherwise, plus a
    /// penalty that makes suspect-free candidates always outrank
    /// suspect-crossing ones. Candidate streams are pure functions of
    /// `(engine seed, op, attempt)`, so traces stay fingerprintable;
    /// retries re-plan from wherever the op stalled. Empty (the op
    /// draws its own digits) without health or when no candidate
    /// converged.
    fn plan_walk(&self, from: NodeId, target: Point, id: OpId, attempt: u32) -> Vec<u32> {
        const CANDIDATES: u64 = 32;
        const MAX_STEPS: usize = 96;
        /// Expected-delay surcharge for a suspect cover: dominates any
        /// realistic sum of per-hop smoothed delays.
        const SUSPECT_PENALTY: u64 = 100_000;
        let Some(h) = self.health.as_deref() else {
            return Vec::new();
        };
        // price a cover at smoothed delay + deviation (greys are both
        // slow *and* jittery, so the deviation term separates them
        // from the healthy population even on few samples)
        let g = h.global_estimate();
        let global = (g.srtt() + g.var()).max(1);
        let price = |n: NodeId| -> u64 {
            let base = match h.estimate(n) {
                Some(e) if e.samples() > 0 => e.srtt() + e.var(),
                _ => global,
            };
            base + if h.is_suspect(n) { SUSPECT_PENALTY } else { 0 }
        };
        let delta = self.net.delta();
        let x = self.net.segment_of(from).start();
        let mut best: Option<(u64, Vec<u32>)> = None;
        for c in 0..CANDIDATES {
            let mut rng = sub_rng(
                self.seed ^ 0xD161_7909,
                (u64::from(id) << 32) | (u64::from(attempt) << 8) | c,
            );
            let mut walk = TwoSidedWalk::new(x, target, delta);
            let mut cur = from;
            let mut cost = 0u64;
            let mut ok = true;
            loop {
                // mirror the Dh1 arm: converged iff the current node's
                // own table covers the walk's target
                if let Some(entry) = self.net.local_cover(cur, walk.target()) {
                    cost += price(entry);
                    let trace = walk.target_backtrace();
                    let mut at = entry;
                    for q in trace.iter().skip(1) {
                        match self.net.local_cover(at, *q) {
                            Some(n) => {
                                at = n;
                                cost += price(n);
                            }
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    break;
                }
                if walk.steps() >= MAX_STEPS {
                    ok = false;
                    break;
                }
                walk.step(&mut rng);
                match self.net.local_cover(cur, walk.source()) {
                    Some(n) => {
                        cur = n;
                        cost += price(n);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            if best.as_ref().is_none_or(|(s, _)| cost < *s) {
                best = Some((cost, walk.digits().to_vec()));
            }
        }
        best.map(|(_, d)| d).unwrap_or_default()
    }

    /// The progress timeout of a scatter round: the slowest contacted
    /// cover bounds the round, so take the max per-destination bound.
    fn scatter_timeout(&self, id: OpId, holders: &[NodeId], attempt: u32) -> u64 {
        let ceiling = self.retry.timeout;
        if !self.retry.adaptive {
            return ceiling;
        }
        let Some(h) = self.health.as_deref() else { return ceiling };
        let base = holders
            .iter()
            .map(|&n| h.timeout_for(n, ceiling))
            .max()
            .unwrap_or(ceiling);
        self.backed_off(base, id, attempt)
    }

    /// How long a staged quorum read waits before its next hedge.
    fn hedge_delay_now(&self) -> u64 {
        match self.health.as_deref() {
            Some(h) => h.hedge_delay(self.retry.timeout),
            None => (self.retry.timeout / 8).max(1),
        }
    }

    /// Is `node` within the §6.2 cover clique of `item` — one of the
    /// `m` ring-consecutive covers starting at the cover of `item`?
    /// (`node` is a clique member iff walking at most `m − 1` ring
    /// predecessors reaches the segment covering `item`.)
    fn in_clique(&self, node: NodeId, item: Point, m: u8) -> bool {
        let mut cur = node;
        for _ in 0..m {
            if self.net.segment_of(cur).contains(item) {
                return true;
            }
            cur = self.net.ring_pred(cur);
        }
        false
    }

    /// Step the op's machine — but a replicated op whose message
    /// already sits on a clique member skips the rest of the route and
    /// enters the scatter right there: §6.2 only needs the route to
    /// locate *one* cover, the clique reaches the rest in one hop.
    /// (This is also what makes quorum ops reachable around a dead
    /// primary: any live cover the route touches can coordinate.)
    fn advance_or_enter<V: ShareView>(
        &mut self,
        id: OpId,
        serve: &mut impl FnMut(NodeId, u64, Point, u32) -> bool,
        view: &V,
    ) {
        let op = &self.ops[id as usize];
        let entry = match op.action {
            Action::PutShares { item, m, .. } | Action::GetShares { item, m, .. } => {
                let routing = !matches!(
                    op.machine,
                    Machine::Scatter | Machine::Done | Machine::Failed
                );
                (routing && self.in_clique(op.cur, item, m)).then_some(())
            }
            _ => None,
        };
        if entry.is_some() {
            self.begin_scatter(id, view);
        } else {
            self.advance(id, serve, view);
        }
    }

    /// A routed op's message reached the node covering its target:
    /// plain ops complete here; replicated ops enter the clique
    /// scatter instead.
    fn arrive<V: ShareView>(&mut self, id: OpId, view: &V) {
        if self.ops[id as usize].action.is_replicated() {
            self.begin_scatter(id, view);
        } else {
            self.complete(id);
        }
    }

    /// Enter the §6.2 clique protocol: the node the route landed on
    /// becomes the coordinator, enumerates the item's cover clique
    /// over the ring (every member is one hop away — the clique
    /// property), and fans one `StoreShare`/`FetchShare` out per
    /// cover; its own share is a free local step. One progress timer
    /// covers the whole round: if the quorum is not reached in time,
    /// the op restarts end to end like any other routed op.
    fn begin_scatter<V: ShareView>(&mut self, id: OpId, view: &V) {
        let op = &self.ops[id as usize];
        let cur = op.cur;
        let (key, m, k, item, put, share_len) = match op.action {
            Action::PutShares { key, len, m, k, item } => (key, m, k, item, true, len),
            Action::GetShares { key, m, k, item } => (key, m, k, item, false, 0),
            _ => unreachable!("arrive() gates on is_replicated"),
        };
        // walk back to the clique primary (the cover of h(item)): the
        // route may have entered the clique at any member
        let mut primary = cur;
        let mut steps = 0u32;
        while !self.net.segment_of(primary).contains(item) {
            primary = self.net.ring_pred(primary);
            steps += 1;
            assert!(
                steps <= 2 * u32::from(m),
                "coordinator {cur} is not within the clique of {item:?}"
            );
        }
        // the clique: m consecutive covers, truncated if the whole
        // ring is smaller than m
        let mut holders: Vec<NodeId> = Vec::with_capacity(m as usize);
        let mut h = primary;
        for _ in 0..m {
            holders.push(h);
            h = self.net.ring_succ(h);
            if h == primary {
                break;
            }
        }
        // load shedding: when a majority of the clique is suspected
        // *dead* (accrual counter, not the mere-slowness penalty) a
        // quorum is unreachable in practice — fail fast instead of
        // burning the whole retry budget against dead covers. Each
        // shed also decays the suspects one notch: the shed stream is
        // the detector's clock, so a healed partition's stale
        // suspicion drains instead of locking the clique out forever.
        if self.retry.hedge {
            let suspects: Vec<NodeId> = match self.health.as_deref() {
                Some(h) => holders
                    .iter()
                    .copied()
                    .filter(|&n| n != cur && h.is_dead_suspect(n))
                    .collect(),
                None => Vec::new(),
            };
            if suspects.len() * 2 > holders.len() {
                for n in suspects {
                    self.note_alive(n);
                }
                let op = &mut self.ops[id as usize];
                op.machine = Machine::Failed;
                self.stats.shed += 1;
                self.stats.failed += 1;
                return;
            }
        }
        // coordinator handoff: a suspect coordinator relays every
        // share reply through its own slow queue, so a hedged read
        // forwards the coordination one hop to the least-suspect
        // cover instead (at most once per attempt)
        if self.retry.hedge && !put && !self.ops[id as usize].handed_off {
            if let Some(h) = self.health.as_deref() {
                if h.is_suspect(cur) {
                    let best = holders
                        .iter()
                        .copied()
                        .min_by_key(|&n| (h.suspicion(n), n))
                        .unwrap_or(cur);
                    if best != cur && h.suspicion(best) < h.suspicion(cur) {
                        let op = &mut self.ops[id as usize];
                        op.handed_off = true;
                        self.send_step(id, best, item);
                        return;
                    }
                }
            }
        }
        // contact order: identity normally (bit-identical to the
        // pre-health fan-out); suspicion-sorted with the coordinator's
        // free local share first when hedging
        let reorder = self.retry.hedge && self.health.is_some();
        let mut order: Vec<u8> = (0..holders.len() as u8).collect();
        if reorder {
            if let Some(h) = self.health.as_deref() {
                order.sort_by_key(|&i| (h.suspicion(holders[i as usize]), i));
            }
            if let Some(pos) = order.iter().position(|&i| holders[i as usize] == cur) {
                let own = order.remove(pos);
                order.insert(0, own);
            }
        }
        // staged fan-out: a hedged read contacts only a quorum's worth
        // of covers upfront; hedge timers and not-found replies extend
        let need = (k as usize).min(holders.len()).max(1);
        let staged = reorder && !put;
        let contact = if staged { need } else { holders.len() };
        self.note(
            self.clock,
            self.ops[id as usize].attempt,
            ObsEvent::QuorumEntry {
                coordinator: cur.0,
                clique: holders.len() as u32,
                need: need as u32,
            },
        );
        let op = &mut self.ops[id as usize];
        op.step += 1;
        op.waiting_on = None;
        let (attempt, step) = (op.attempt, op.step);
        let rep = op.replica.get_or_insert_with(Default::default);
        rep.acked.clear();
        rep.replied.clear();
        rep.gathered.clear();
        rep.holders.clear();
        rep.holders.extend_from_slice(&holders);
        rep.contact_order.clear();
        rep.contact_order.extend_from_slice(&order);
        rep.contacted = contact;
        rep.wave = 0;
        op.machine = Machine::Scatter;
        for &idx in order.iter().take(contact) {
            let holder = holders[idx as usize];
            if holder == cur {
                let rep = self.ops[id as usize].replica.as_mut().expect("just set");
                if put {
                    if !rep.stored.contains(&idx) {
                        rep.stored.push(idx);
                    }
                    rep.acked.push(idx);
                } else {
                    rep.replied.push(idx);
                    if view.share_len(holder, key, idx).is_some() {
                        rep.gathered.push(idx);
                    }
                }
            } else {
                let msg = if put {
                    Wire::StoreShare { op: id, attempt, idx, key, len: share_len }
                } else {
                    Wire::FetchShare { op: id, attempt, idx, key, wave: 0 }
                };
                self.send_replica(id, cur, holder, msg);
            }
        }
        let timeout = self.scatter_timeout(id, &holders, attempt);
        self.note(
            self.clock,
            attempt,
            ObsEvent::TimerArm { dst: cur.0, deadline: self.clock + timeout },
        );
        self.push_event(
            self.clock + timeout,
            EventKind::Timer { op: id, attempt, step },
            Lane::Timer,
        );
        if staged && contact < holders.len() {
            let delay = self.hedge_delay_now();
            self.push_event(self.clock + delay, EventKind::Hedge { op: id, attempt }, Lane::Timer);
        }
        self.check_quorum(id);
    }

    /// Launch the next staged fetch of a hedged quorum read, if any
    /// cover remains uncontacted. Returns whether one was sent.
    fn contact_next(&mut self, id: OpId) -> bool {
        let op = &mut self.ops[id as usize];
        let Action::GetShares { key, .. } = op.action else { return false };
        let attempt = op.attempt;
        let cur = op.cur;
        let Some(rep) = op.replica.as_mut() else { return false };
        let Some(&idx) = rep.contact_order.get(rep.contacted) else { return false };
        rep.contacted += 1;
        rep.wave = rep.wave.saturating_add(1);
        let wave = rep.wave;
        let Some(&holder) = rep.holders.get(idx as usize) else { return false };
        self.send_replica(id, cur, holder, Wire::FetchShare { op: id, attempt, idx, key, wave });
        true
    }

    /// Reply-driven top-up of a staged quorum read: every contacted
    /// cover has answered but the quorum is still short — extend to
    /// the next cover immediately instead of waiting for a hedge.
    fn extend_contact_if_stalled(&mut self, id: OpId) {
        let op = &self.ops[id as usize];
        if !matches!(op.machine, Machine::Scatter) {
            return;
        }
        let Action::GetShares { k, .. } = op.action else { return };
        let Some(rep) = op.replica.as_ref() else { return };
        let need = (k as usize).min(rep.holders.len()).max(1);
        if rep.gathered.len() >= need
            || rep.contacted >= rep.contact_order.len()
            || rep.replied.len() < rep.contacted
        {
            return;
        }
        self.contact_next(id);
    }

    /// A hedge timer fired: if the staged quorum read is still short,
    /// raise (gentle) suspicion of the silent covers, launch one
    /// backup fetch, and chain the next hedge.
    fn hedge_fire(&mut self, id: OpId, attempt: u32) {
        let op = &self.ops[id as usize];
        if !matches!(op.machine, Machine::Scatter) || attempt != op.attempt {
            return; // the read completed or restarted since
        }
        let Some(rep) = op.replica.as_ref() else { return };
        let cur = op.cur;
        let mut silent: Vec<NodeId> = Vec::new();
        for slot in 0..rep.contacted {
            if let Some(&idx) = rep.contact_order.get(slot) {
                if !rep.replied.contains(&idx) {
                    if let Some(&n) = rep.holders.get(idx as usize) {
                        if n != cur {
                            silent.push(n);
                        }
                    }
                }
            }
        }
        for n in silent {
            self.raise_suspicion(n, true);
        }
        if self.contact_next(id) {
            self.stats.hedged += 1;
            let wave = self.ops[id as usize].replica.as_ref().map_or(0, |r| u32::from(r.wave));
            self.note(self.clock, attempt, ObsEvent::Hedge { wave });
            let more = self.ops[id as usize]
                .replica
                .as_ref()
                .is_some_and(|r| r.contacted < r.contact_order.len());
            if more {
                let delay = self.hedge_delay_now();
                self.push_event(
                    self.clock + delay,
                    EventKind::Hedge { op: id, attempt },
                    Lane::Timer,
                );
            }
        }
    }

    /// Completion test of the scatter phase: a put completes at `k`
    /// acks (write quorum), a get at `k` gathered shares — or once
    /// every cover answered (the item may simply have fewer than `k`
    /// live shares; the driver decides what that means).
    fn check_quorum(&mut self, id: OpId) {
        let op = &self.ops[id as usize];
        if !matches!(op.machine, Machine::Scatter) {
            return;
        }
        let rep = op.replica.as_ref().expect("scatter state exists");
        let (put, k) = match op.action {
            Action::PutShares { k, .. } => (true, k),
            Action::GetShares { k, .. } => (false, k),
            _ => unreachable!("only replicated ops scatter"),
        };
        let need = (k as usize).min(rep.holders.len());
        let done = if put {
            rep.acked.len() >= need
        } else {
            rep.gathered.len() >= need || rep.replied.len() == rep.holders.len()
        };
        if done {
            self.complete(id);
        }
    }

    /// Emit one clique-protocol message (scatter fan-out, ack or
    /// reply), charged to the op. No per-message timer: the scatter
    /// round is covered by a single progress timer.
    fn send_replica(&mut self, id: OpId, src: NodeId, dst: NodeId, msg: Wire) {
        let bytes = msg.wire_bytes();
        let op = &mut self.ops[id as usize];
        op.msgs += 1;
        op.bytes += bytes;
        let attempt = op.attempt;
        self.dispatch(Envelope { src, dst, msg, corrupt: false }, bytes, attempt);
    }

    /// Accrue suspicion of `node` (gentle accrual when `hedge`),
    /// emitting a [`ObsEvent::SuspicionEdge`] when the detector's
    /// verdict flips. Pure pass-through to [`NetHealth`] plus reads —
    /// behavior is identical to calling `raise`/`raise_hedge` direct.
    fn raise_suspicion(&mut self, node: NodeId, hedge: bool) {
        let Some(h) = self.health.as_deref_mut() else { return };
        let was = h.is_suspect(node);
        if hedge {
            h.raise_hedge(node);
        } else {
            h.raise(node);
        }
        let now = h.is_suspect(node);
        let level = h.suspicion(node);
        if was != now {
            self.note(self.clock, 0, ObsEvent::SuspicionEdge { node: node.0, up: now, level });
        }
    }

    /// Decay suspicion of `node` (it showed life), emitting a
    /// [`ObsEvent::SuspicionEdge`] when the verdict flips back down.
    fn note_alive(&mut self, node: NodeId) {
        let Some(h) = self.health.as_deref_mut() else { return };
        let was = h.is_suspect(node);
        h.alive(node);
        let now = h.is_suspect(node);
        let level = h.suspicion(node);
        if was != now {
            self.note(self.clock, 0, ObsEvent::SuspicionEdge { node: node.0, up: now, level });
        }
    }

    fn deliver<V: ShareView>(
        &mut self,
        env: Envelope,
        serve: &mut impl FnMut(NodeId, u64, Point, u32) -> bool,
        view: &V,
    ) {
        self.stats.delivered += 1;
        if self.obs.is_on() {
            let attempt = match &env.msg {
                Wire::LookupStep { attempt, .. }
                | Wire::StoreShare { attempt, .. }
                | Wire::ShareAck { attempt, .. }
                | Wire::FetchShare { attempt, .. }
                | Wire::ShareReply { attempt, .. } => *attempt,
                _ => 0,
            };
            self.note(
                self.clock,
                attempt,
                ObsEvent::Deliver { src: env.src.0, dst: env.dst.0 },
            );
        }
        // any delivered message is evidence its sender is alive
        self.note_alive(env.src);
        match env.msg {
            Wire::LookupStep { op: id, attempt, step, .. } => {
                // an id this engine never issued (a hand-crafted send)
                // is ignored like any other stale traffic
                let Some(op) = self.ops.get_mut(id as usize) else {
                    self.stats.stale += 1;
                    return;
                };
                if matches!(op.machine, Machine::Done | Machine::Failed)
                    || attempt != op.attempt
                    || step != op.step
                {
                    self.stats.stale += 1;
                    return;
                }
                op.cur = env.dst;
                op.corrupt |= env.corrupt;
                op.waiting_on = None;
                self.advance_or_enter(id, serve, view);
            }
            Wire::StoreShare { op: id, attempt, idx, .. } => {
                self.deliver_store(&env, id, attempt, idx)
            }
            Wire::ShareAck { op: id, attempt, idx } => self.deliver_ack(&env, id, attempt, idx),
            Wire::FetchShare { op: id, attempt, idx, key, .. } => {
                self.deliver_fetch(&env, id, attempt, idx, key, view)
            }
            Wire::ShareReply { op: id, attempt, idx, found, .. } => {
                self.deliver_reply(&env, id, attempt, idx, found)
            }
            _ => {} // bare protocol message: accounted, no machine
        }
    }

    /// Holder side of a replicated put: record the placement and ack.
    fn deliver_store(&mut self, env: &Envelope, id: OpId, attempt: u32, idx: u8) {
        let Some(op) = self.ops.get_mut(id as usize) else {
            self.stats.stale += 1;
            return;
        };
        // a corrupted share fails the holder's integrity check and is
        // never stored — the write quorum, not this holder, recovers
        if attempt != op.attempt || matches!(op.machine, Machine::Failed) || env.corrupt {
            self.stats.stale += 1;
            return;
        }
        let rep = op.replica.get_or_insert_with(Default::default);
        if !rep.stored.contains(&idx) {
            rep.stored.push(idx);
        }
        // late arrivals past quorum still place their share (recorded
        // above) but the ack could no longer matter — stay quiet
        if !matches!(op.machine, Machine::Done) {
            self.send_replica(id, env.dst, env.src, Wire::ShareAck { op: id, attempt, idx });
        }
    }

    /// Coordinator side of a replicated put: count the ack toward the
    /// write quorum.
    fn deliver_ack(&mut self, env: &Envelope, id: OpId, attempt: u32, idx: u8) {
        let Some(op) = self.ops.get_mut(id as usize) else {
            self.stats.stale += 1;
            return;
        };
        if attempt != op.attempt || !matches!(op.machine, Machine::Scatter) || env.corrupt {
            self.stats.stale += 1;
            return;
        }
        let rep = op.replica.as_mut().expect("scatter state exists");
        if !rep.acked.contains(&idx) {
            rep.acked.push(idx);
        }
        self.note(
            self.clock,
            attempt,
            ObsEvent::ShareAck { holder: env.src.0, idx: u32::from(idx) },
        );
        self.check_quorum(id);
    }

    /// Holder side of a quorum read: consult the share store, answer.
    fn deliver_fetch<V: ShareView>(
        &mut self,
        env: &Envelope,
        id: OpId,
        attempt: u32,
        idx: u8,
        key: u64,
        view: &V,
    ) {
        let Some(op) = self.ops.get(id as usize) else {
            self.stats.stale += 1;
            return;
        };
        if attempt != op.attempt
            || matches!(op.machine, Machine::Done | Machine::Failed)
            || env.corrupt
        {
            self.stats.stale += 1;
            return;
        }
        let (found, len) = match view.share_len(env.dst, key, idx) {
            Some(len) => (true, len),
            None => (false, 0),
        };
        let reply = Wire::ShareReply { op: id, attempt, idx, key, found, len };
        self.send_replica(id, env.dst, env.src, reply);
    }

    /// Coordinator side of a quorum read: count the reply; the first
    /// `k` found shares reconstruct.
    fn deliver_reply(&mut self, env: &Envelope, id: OpId, attempt: u32, idx: u8, found: bool) {
        let Some(op) = self.ops.get_mut(id as usize) else {
            self.stats.stale += 1;
            return;
        };
        // a corrupted reply fails its integrity check: it never counts
        // toward the quorum (false message injection cannot fake reads)
        if attempt != op.attempt || !matches!(op.machine, Machine::Scatter) || env.corrupt {
            self.stats.stale += 1;
            return;
        }
        let rep = op.replica.as_mut().expect("scatter state exists");
        if !rep.replied.contains(&idx) {
            rep.replied.push(idx);
            if found {
                rep.gathered.push(idx);
                // a found reply is the read-side twin of a put's ack:
                // the holder contributed a share toward the quorum
                self.note(
                    self.clock,
                    attempt,
                    ObsEvent::ShareAck { holder: env.src.0, idx: u32::from(idx) },
                );
            }
        }
        if self.retry.hedge {
            self.extend_contact_if_stalled(id);
        }
        self.check_quorum(id);
    }

    fn timer<V: ShareView>(
        &mut self,
        id: OpId,
        attempt: u32,
        step: u32,
        serve: &mut impl FnMut(NodeId, u64, Point, u32) -> bool,
        view: &V,
    ) {
        let op = &self.ops[id as usize];
        if matches!(op.machine, Machine::Done | Machine::Failed)
            || attempt != op.attempt
            || step != op.step
        {
            return; // the op made progress since this timer was armed
        }
        self.note(self.clock, attempt, ObsEvent::TimerFire { step });
        let op = &self.ops[id as usize];
        // spurious-timeout protection for hedged routes: a stalled
        // step is usually a lost or merely-late message (a grey
        // crossing outlasts the healthy-sized timer but still
        // arrives) — retransmit in place with identical stamps
        // (either delivery advances the op) instead of discarding
        // route progress with a restart, and only soft-blame: a
        // restart is the last resort once the resend budget shows the
        // silence is real.
        const MAX_RESENDS: u8 = 2;
        if self.retry.hedge && !matches!(op.machine, Machine::Scatter) {
            if let (Some(dst), Some(_)) = (op.waiting_on, self.health.as_deref()) {
                if op.resends < MAX_RESENDS {
                    let at = op.last_at;
                    self.ops[id as usize].resends += 1;
                    let msg = self.step_msg(id, at);
                    let bytes = msg.wire_bytes();
                    let op = &mut self.ops[id as usize];
                    op.msgs += 1;
                    op.bytes += bytes;
                    let src = op.cur;
                    // repeated silence still accrues, gently
                    self.raise_suspicion(dst, true);
                    let timeout = self.progress_timeout(id, dst, attempt);
                    self.dispatch(Envelope { src, dst, msg, corrupt: false }, bytes, attempt);
                    self.push_event(
                        self.clock + timeout,
                        EventKind::Timer { op: id, attempt, step },
                        Lane::Timer,
                    );
                    return;
                }
            }
        }
        // the accrual detector's primary signal: blame whoever we were
        // waiting on when the progress timer fired
        if self.health.is_some() {
            let mut blamed: Vec<NodeId> = Vec::new();
            match (&op.machine, op.replica.as_ref()) {
                (Machine::Scatter, Some(rep)) => {
                    let put = matches!(op.action, Action::PutShares { .. });
                    for slot in 0..rep.contacted {
                        if let Some(&idx) = rep.contact_order.get(slot) {
                            let answered = if put {
                                rep.acked.contains(&idx)
                            } else {
                                rep.replied.contains(&idx)
                            };
                            if !answered {
                                if let Some(&n) = rep.holders.get(idx as usize) {
                                    if n != op.cur {
                                        blamed.push(n);
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {
                    if let Some(n) = op.waiting_on {
                        blamed.push(n);
                    }
                }
            }
            for n in blamed {
                self.raise_suspicion(n, false);
            }
        }
        let op = &mut self.ops[id as usize];
        if op.attempt >= self.retry.max_attempts {
            op.machine = Machine::Failed;
            self.stats.failed += 1;
            return;
        }
        // end-to-end restart from the origin: new attempt stamp
        // invalidates every in-flight message of the old one
        op.attempt += 1;
        op.step = 0;
        op.corrupt = false;
        op.serve_level = None;
        op.serve_at = None;
        op.entered_at = None;
        self.stats.retries += 1;
        let fresh = op.attempt;
        self.note(self.clock, fresh, ObsEvent::Retry);
        let op = &self.ops[id as usize];
        // a hedged DH route that stalled mid-walk resumes from the
        // node holding the message — a fresh random descent from here
        // (the stalled hop's cover is now suspect, so the new digits
        // steer around it) — instead of paying the whole route again
        let resume = self.retry.hedge
            && self.health.is_some()
            && matches!(op.kind, RouteKind::DistanceHalving)
            && matches!(op.machine, Machine::Dh1 | Machine::Dh2 { .. });
        if resume {
            let (cur, target, attempt) = (op.cur, op.target, op.attempt);
            let here = self.net.segment_of(cur).start();
            let delta = self.net.delta();
            let digits = self.plan_walk(cur, target, id, attempt);
            let op = &mut self.ops[id as usize];
            op.handed_off = false;
            op.walk.reset(here, op.target, delta);
            op.planned = digits;
            op.machine = Machine::Dh1;
        } else {
            self.start_op(id);
        }
        self.advance_or_enter(id, serve, view);
    }

    fn complete(&mut self, id: OpId) {
        let op = &mut self.ops[id as usize];
        op.machine = Machine::Done;
        op.completed_at = Some(self.clock);
        self.stats.completed += 1;
        // the trace is not part of the outcome — recycle its buffer
        let trace = mem::take(&mut op.trace);
        if trace.capacity() > 0 {
            self.trace_pool.push(trace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Inline, Recorder, Sim};
    use crate::fault::{FaultModel, Faulty};
    use cd_core::pointset::PointSet;

    /// A complete-graph toy topology: every server's "table" covers the
    /// whole circle, so `local_cover` always answers. Exercises the
    /// engine core (timers, retries, stamps, accounting) without
    /// depending on the Distance Halving discretisation — the
    /// bit-identity tests against `DhNetwork` live in `dh_dht`.
    struct Complete {
        ps: PointSet,
        delta: u32,
    }

    impl Complete {
        fn new(n: usize, delta: u32) -> Self {
            Complete { ps: PointSet::evenly_spaced(n), delta }
        }

        fn cover(&self, p: Point) -> NodeId {
            let pts = self.ps.points();
            let idx = pts.partition_point(|x| x.bits() <= p.bits());
            NodeId(if idx == 0 { pts.len() as u32 - 1 } else { idx as u32 - 1 })
        }
    }

    impl Topology for Complete {
        fn delta(&self) -> u32 {
            self.delta
        }
        fn segment_of(&self, n: NodeId) -> Interval {
            self.ps.segment(n.0 as usize)
        }
        fn local_cover(&self, _cur: NodeId, p: Point) -> Option<NodeId> {
            Some(self.cover(p))
        }
        fn greedy_step(&self, p: Point, target: Point) -> Point {
            // chord-style: the largest 2⁻ⁱ not overshooting the target
            let d = target.offset_from(p);
            p.wrapping_add(1u64 << (63 - d.leading_zeros()))
        }
        fn ring_succ(&self, n: NodeId) -> NodeId {
            NodeId((n.0 + 1) % self.ps.len() as u32)
        }
        fn ring_pred(&self, n: NodeId) -> NodeId {
            let len = self.ps.len() as u32;
            NodeId((n.0 + len - 1) % len)
        }
    }

    fn submit_mixed(eng: &mut Engine<Complete, impl Transport>, n: u32) -> Vec<OpId> {
        (0..n)
            .map(|i| {
                let kind =
                    if i % 2 == 0 { RouteKind::Fast } else { RouteKind::DistanceHalving };
                let from = NodeId(i % 16);
                let target = Point(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(i) + 1));
                eng.submit(kind, from, target, Action::Locate)
            })
            .collect()
    }

    #[test]
    fn inline_ops_complete_at_the_cover() {
        let net = Complete::new(16, 2);
        let mut eng = Engine::new(&net, Inline, 7);
        let ops = submit_mixed(&mut eng, 40);
        eng.run();
        assert_eq!(eng.stats.failed, 0);
        assert_eq!(eng.stats.completed, 40);
        for id in ops {
            let out = eng.outcome(id);
            assert!(out.ok);
            let dest = out.dest.expect("completed");
            assert!(net.segment_of(dest).contains(
                match out.action { Action::Locate => out.path.points[out.path.points.len() - 1], _ => unreachable!() }
            ));
            assert_eq!(out.attempts, 1);
            assert_eq!(out.msgs as usize, out.path.hops());
        }
    }

    #[test]
    fn greedy_machine_completes_at_the_cover() {
        let net = Complete::new(16, 2);
        let mut eng = Engine::new(&net, Inline, 43);
        let ops: Vec<OpId> = (0..30)
            .map(|i| {
                let target = Point(0xD1B5_4A32_D192_ED03u64.wrapping_mul(i + 1));
                eng.submit(RouteKind::Greedy, NodeId((i % 16) as u32), target, Action::Locate)
            })
            .collect();
        eng.run();
        assert_eq!(eng.stats.failed, 0);
        for id in ops {
            let out = eng.outcome(id);
            assert!(out.ok);
            let target = *out.path.points.last().expect("nonempty");
            assert!(net.segment_of(out.dest.expect("done")).contains(target));
            assert_eq!(out.msgs as usize, out.path.hops(), "one hop = one message under Inline");
            // greedy walks clear one bit of the gap per continuous step
            assert!(out.path.hops() <= 64);
        }
    }

    #[test]
    fn greedy_machine_survives_drops() {
        let net = Complete::new(16, 2);
        let mut eng = Engine::new(&net, Sim::new(21).with_drop(0.25), 47)
            .with_retry(RetryPolicy::fixed(100, 12));
        let ops: Vec<OpId> = (0..25)
            .map(|i| {
                let target = Point(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 3));
                eng.submit(RouteKind::Greedy, NodeId((i % 16) as u32), target, Action::Locate)
            })
            .collect();
        eng.run();
        assert_eq!(eng.stats.failed, 0, "retry must absorb 25% loss on short greedy routes");
        for id in ops {
            assert!(eng.outcome(id).ok);
        }
    }

    #[test]
    fn sim_same_seed_same_everything() {
        let net = Complete::new(32, 2);
        let run = || {
            let mut eng =
                Engine::new(&net, Recorder::new(Sim::new(3).with_drop(0.1).with_dup(0.1)), 11)
                    .with_retry(RetryPolicy::fixed(200, 10));
            let ops = submit_mixed(&mut eng, 60);
            eng.run();
            let outs: Vec<(bool, u64, u64, u32, Option<u64>)> = ops
                .iter()
                .map(|&id| {
                    let o = eng.outcome(id);
                    (o.ok, o.msgs, o.bytes, o.attempts, o.completed_at)
                })
                .collect();
            let stats = eng.stats;
            (outs, stats, eng.into_transport().into_trace().fingerprint())
        };
        let (a_out, a_stats, a_fp) = run();
        let (b_out, b_stats, b_fp) = run();
        assert_eq!(a_out, b_out);
        assert_eq!(a_stats, b_stats);
        assert_eq!(a_fp, b_fp, "same seed must give the identical event trace");
    }

    #[test]
    fn drops_are_survived_by_retry() {
        let net = Complete::new(16, 2);
        let mut eng = Engine::new(&net, Sim::new(5).with_drop(0.3), 13)
            .with_retry(RetryPolicy::fixed(100, 12));
        let ops = submit_mixed(&mut eng, 30);
        eng.run();
        assert_eq!(eng.stats.failed, 0, "retry must absorb 30% loss on short routes");
        assert!(eng.stats.retries > 0, "with 30% loss some op must have retried");
        for id in ops {
            assert!(eng.outcome(id).ok);
        }
    }

    #[test]
    fn duplicates_and_reordering_are_ignored_by_stamps() {
        let net = Complete::new(16, 2);
        let mut eng = Engine::new(&net, Sim::new(9).with_dup(0.5).with_latency(1, 20, 10), 17);
        let ops = submit_mixed(&mut eng, 40);
        eng.run();
        assert!(eng.stats.duplicated > 0);
        assert!(eng.stats.stale > 0, "duplicate arrivals must be discarded as stale");
        assert_eq!(eng.stats.failed, 0);
        for id in ops {
            let o = eng.outcome(id);
            assert!(o.ok);
            assert_eq!(o.attempts, 1, "duplication alone must never trigger a retry");
        }
    }

    #[test]
    fn fail_stop_destination_exhausts_retries() {
        let net = Complete::new(16, 2);
        let target = Point(u64::MAX / 2 + 12345);
        let dest = net.cover(target);
        let mut faulty = Faulty::new(Inline, FaultModel::FailStop);
        faulty.fail(dest);
        let from = NodeId((dest.0 + 1) % 16);
        let mut eng = Engine::new(&net, faulty, 19)
            .with_retry(RetryPolicy::fixed(50, 3));
        let op = eng.submit(RouteKind::Fast, from, target, Action::Locate);
        eng.run();
        let out = eng.outcome(op);
        assert!(!out.ok, "a dead destination cannot answer");
        assert_eq!(out.attempts, 3);
        assert_eq!(eng.stats.failed, 1);
        assert!(eng.stats.dropped >= 3);
    }

    #[test]
    fn injection_marks_outcomes_corrupt() {
        let net = Complete::new(16, 2);
        let mut faulty = Faulty::new(Inline, FaultModel::FalseMessageInjection);
        // fail every node: any route that sends at least one message
        // must arrive corrupted
        for i in 0..16 {
            faulty.fail(NodeId(i));
        }
        let mut eng = Engine::new(&net, faulty, 23);
        let ops = submit_mixed(&mut eng, 20);
        eng.run();
        for id in ops {
            let o = eng.outcome(id);
            assert!(o.ok, "liars keep routing");
            assert_eq!(o.corrupt, o.msgs > 0, "message-free ops cannot be corrupted");
        }
    }

    #[test]
    fn bare_sends_are_accounted() {
        let net = Complete::new(8, 2);
        let mut eng = Engine::new(&net, Inline, 29);
        eng.send(NodeId(0), NodeId(1), Wire::NeighborDiff { entries: 3 });
        eng.send(NodeId(1), NodeId(2), Wire::JoinSplit { x: Point(5) });
        eng.run();
        assert_eq!(eng.stats.msgs, 2);
        assert_eq!(eng.stats.delivered, 2);
        assert_eq!(
            eng.stats.bytes,
            Wire::NeighborDiff { entries: 3 }.wire_bytes() + Wire::JoinSplit { x: Point(5) }.wire_bytes()
        );
    }

    #[test]
    fn hand_crafted_op_messages_are_ignored_not_fatal() {
        let net = Complete::new(8, 2);
        let mut eng = Engine::new(&net, Inline, 41);
        // a LookupStep naming an op this engine never issued must be
        // discarded like stale traffic, not crash the run
        eng.send(
            NodeId(0),
            NodeId(1),
            Wire::LookupStep {
                op: 7,
                attempt: 1,
                step: 1,
                at: Point(9),
                digits: 0,
                action: Action::Locate,
            },
        );
        eng.run();
        assert_eq!(eng.stats.stale, 1);
        assert_eq!(eng.stats.delivered, 1);
    }

    #[test]
    fn take_outcome_moves_the_route_out() {
        let net = Complete::new(16, 2);
        let mut eng = Engine::new(&net, Inline, 59);
        let op = eng.submit(RouteKind::Fast, NodeId(2), Point(u64::MAX / 7), Action::Locate);
        eng.run();
        let cloned = eng.outcome(op);
        let taken = eng.take_outcome(op);
        assert!(taken.ok);
        assert_eq!(taken.path, cloned.path);
        assert_eq!(taken.dest, cloned.dest);
        assert_eq!((taken.msgs, taken.bytes, taken.attempts), (cloned.msgs, cloned.bytes, cloned.attempts));
        // a second take still reports the metrics but the route is gone
        let again = eng.take_outcome(op);
        assert!(again.ok && again.path.nodes.is_empty());
        assert_eq!(again.dest, cloned.dest, "destination survives the move");
    }

    #[test]
    fn indexed_submission_reproduces_global_randomness() {
        // ops 0..n in one engine vs the odd half submitted alone with
        // their global indices: identical routes op for op
        let net = Complete::new(16, 2);
        let mut all = Engine::new(&net, Inline, 83);
        let ops: Vec<OpId> = (0..20u64)
            .map(|i| {
                let target = Point(0xA24B_AED4_963E_E407u64.wrapping_mul(i + 1));
                all.submit(RouteKind::DistanceHalving, NodeId((i % 16) as u32), target, Action::Locate)
            })
            .collect();
        all.run();
        let mut odd = Engine::new(&net, Inline, 83);
        let odd_ops: Vec<OpId> = (0..20u64)
            .filter(|i| i % 2 == 1)
            .map(|i| {
                let target = Point(0xA24B_AED4_963E_E407u64.wrapping_mul(i + 1));
                odd.submit_at_indexed(
                    0,
                    RouteKind::DistanceHalving,
                    NodeId((i % 16) as u32),
                    target,
                    Action::Locate,
                    i,
                )
            })
            .collect();
        odd.run();
        for (k, &id) in odd_ops.iter().enumerate() {
            let global = ops[2 * k + 1];
            assert_eq!(odd.outcome(id).path, all.outcome(global).path, "op {k} diverged");
        }
    }

    /// A share table for the replica tests: `(node, key, idx) → len`.
    struct TableShares(std::collections::HashMap<(u32, u64, u8), u32>);

    impl ShareView for TableShares {
        fn share_len(&self, node: NodeId, key: u64, idx: u8) -> Option<u32> {
            self.0.get(&(node.0, key, idx)).copied()
        }
    }

    /// The clique of `item` on the `Complete` ring: `m` consecutive
    /// servers starting at the cover.
    fn clique(net: &Complete, item: Point, m: u8) -> Vec<NodeId> {
        let mut out = vec![net.cover(item)];
        for _ in 1..m {
            out.push(net.ring_succ(*out.last().unwrap()));
        }
        out
    }

    #[test]
    fn replicated_put_places_all_shares_and_completes_at_quorum() {
        let net = Complete::new(16, 2);
        let item = Point(u64::MAX / 3);
        let cover = net.cover(item);
        let mut eng = Engine::new(&net, Inline, 101);
        let action = Action::PutShares { key: 7, len: 32, m: 5, k: 3, item };
        let op = eng.submit(RouteKind::Fast, cover, item, action);
        eng.run();
        let out = eng.outcome(op);
        assert!(out.ok);
        assert_eq!(out.dest, Some(cover), "the primary cover coordinates");
        assert_eq!(out.holders, clique(&net, item, 5));
        let mut stored = out.shares.clone();
        stored.sort_unstable();
        assert_eq!(stored, vec![0, 1, 2, 3, 4], "under Inline every share lands");
        // origin covers the item: 4 remote StoreShares + 4 acks, no
        // routing messages
        assert_eq!(out.msgs, 8);
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn quorum_read_gathers_first_k_shares() {
        let net = Complete::new(16, 2);
        let item = Point(12345 << 32);
        let (m, k, key) = (5u8, 3u8, 9u64);
        let holders = clique(&net, item, m);
        let mut table = std::collections::HashMap::new();
        for (i, h) in holders.iter().enumerate() {
            table.insert((h.0, key, i as u8), 40u32);
        }
        let view = TableShares(table);
        let mut eng = Engine::new(&net, Inline, 103);
        let from = NodeId((net.cover(item).0 + 7) % 16);
        let op = eng.submit(RouteKind::Fast, from, item, Action::GetShares { key, m, k, item });
        eng.run_with_shares(&view);
        let out = eng.outcome(op);
        assert!(out.ok);
        assert_eq!(out.holders, holders);
        assert_eq!(out.shares.len(), k as usize, "first k of m responses reconstruct");
        // the reply bytes include the share payloads
        assert!(out.bytes >= 3 * 40);
    }

    #[test]
    fn fail_stop_minority_does_not_block_the_quorum() {
        let net = Complete::new(16, 2);
        let item = Point(0xABCD_EF01_2345_6789);
        let (m, k, key) = (5u8, 3u8, 11u64);
        let holders = clique(&net, item, m);
        // fail m−k holders, but never the coordinating primary
        let mut faulty = Faulty::new(Inline, FaultModel::FailStop);
        faulty.fail(holders[2]);
        faulty.fail(holders[4]);
        let cover = holders[0];
        let mut eng = Engine::new(&net, faulty, 107)
            .with_retry(RetryPolicy::fixed(64, 4));
        let put = eng.submit(
            RouteKind::Fast,
            cover,
            item,
            Action::PutShares { key, len: 24, m, k, item },
        );
        eng.run();
        let out = eng.outcome(put);
        assert!(out.ok, "k live covers are a write quorum");
        let mut stored = out.shares.clone();
        stored.sort_unstable();
        assert_eq!(stored, vec![0, 1, 3], "dead covers cannot store");
        // now read back through the same fault pattern
        let mut table = std::collections::HashMap::new();
        for &i in &out.shares {
            table.insert((holders[i as usize].0, key, i), 24u32);
        }
        let mut faulty = Faulty::new(Inline, FaultModel::FailStop);
        faulty.fail(holders[2]);
        faulty.fail(holders[4]);
        let mut eng = Engine::new(&net, faulty, 109)
            .with_retry(RetryPolicy::fixed(64, 4));
        let get = eng.submit(RouteKind::Fast, cover, item, Action::GetShares { key, m, k, item });
        eng.run_with_shares(&TableShares(table));
        let out = eng.outcome(get);
        assert!(out.ok, "k live shares are a read quorum");
        let mut gathered = out.shares.clone();
        gathered.sort_unstable();
        assert_eq!(gathered, vec![0, 1, 3]);
    }

    #[test]
    fn missing_item_read_completes_once_every_cover_answered() {
        let net = Complete::new(16, 2);
        let item = Point(42);
        let mut eng = Engine::new(&net, Inline, 113);
        let op = eng.submit(
            RouteKind::Fast,
            NodeId(3),
            item,
            Action::GetShares { key: 99, m: 4, k: 2, item },
        );
        eng.run_with_shares(&NoShares);
        let out = eng.outcome(op);
        assert!(out.ok, "a complete round of not-founds is an answer, not a timeout");
        assert!(out.shares.is_empty());
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn replicated_ops_survive_drops_via_retry() {
        let net = Complete::new(16, 2);
        let item = Point(u64::MAX / 5);
        let mut eng = Engine::new(&net, Sim::new(7).with_drop(0.2), 127)
            .with_retry(RetryPolicy::fixed(200, 12));
        let op = eng.submit(
            RouteKind::Fast,
            NodeId(0),
            item,
            Action::PutShares { key: 5, len: 16, m: 4, k: 2, item },
        );
        eng.run();
        let out = eng.outcome(op);
        assert!(out.ok, "retry must absorb 20% loss");
        assert!(out.shares.len() >= 2, "at least the quorum was placed");
    }

    #[test]
    fn corrupted_shares_and_replies_never_count() {
        // every node lies: StoreShares arrive corrupted, so no share is
        // ever placed and the put must exhaust its retries
        let net = Complete::new(16, 2);
        let item = Point(u64::MAX / 7);
        let mut liars = Faulty::new(Inline, FaultModel::FalseMessageInjection);
        for i in 0..16 {
            liars.fail(NodeId(i));
        }
        let cover = net.cover(item);
        let from = NodeId((cover.0 + 5) % 16);
        let mut eng = Engine::new(&net, liars, 131)
            .with_retry(RetryPolicy::fixed(64, 3));
        let op = eng.submit(
            RouteKind::Fast,
            from,
            item,
            Action::PutShares { key: 3, len: 8, m: 4, k: 3, item },
        );
        eng.run();
        let out = eng.outcome(op);
        assert!(!out.ok, "a quorum of corrupted shares must not commit");
        // only the coordinator's own (local, message-free) share stands
        assert_eq!(out.shares, vec![0]);
    }

    #[test]
    fn staggered_arrivals_respect_the_clock() {
        let net = Complete::new(16, 2);
        let mut eng = Engine::new(&net, Sim::new(31), 37);
        let a = eng.submit_at(0, RouteKind::Fast, NodeId(0), Point(u64::MAX / 3), Action::Locate);
        let b = eng.submit_at(500, RouteKind::Fast, NodeId(1), Point(u64::MAX / 5), Action::Locate);
        eng.run();
        let (oa, ob) = (eng.outcome(a), eng.outcome(b));
        assert!(oa.ok && ob.ok);
        if ob.msgs > 0 {
            assert!(ob.completed_at.expect("done") >= 500);
        }
        assert!(oa.completed_at.expect("done") <= 500, "op a runs before b starts");
    }
}
