//! The server handle shared by every protocol layer.
//!
//! `NodeId` used to live in `dh_dht::network`; it moved here so the
//! wire format and the transports can name servers without depending
//! on any particular discretisation. `dh_dht` re-exports it, so
//! `dh_dht::NodeId` remains the same type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable handle to a live server (slab index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}
