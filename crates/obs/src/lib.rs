//! `dh_obs` — a deterministic flight recorder and unified metrics
//! registry over **virtual engine time**.
//!
//! The repro prices the paper's per-op claims (congestion, load under
//! batch workloads, dilation) through several subsystem-local structs:
//! `EngineStats`, `LoadCounters`, `RepairReport`, `NetHealth`'s
//! suspicion counters, plus bench-local percentile math. This crate
//! unifies them behind two deterministic primitives:
//!
//! * a **flight recorder** ([`Recorder`]) — a bounded ring of
//!   structured [`Event`]s stamped with the engine's virtual clock,
//!   with an [`Obs::explain`] query that reconstructs the causal chain
//!   of any op (route steps → scatter fan-out → hedges/retries →
//!   completing quorum) and a running fingerprint folded at record
//!   time, so an instrumented run pins its own trace in CI exactly
//!   like the wire traces do;
//! * a **metrics registry** ([`Registry`]) — counters, gauges and
//!   log₂-bucket histograms keyed by `(&'static str, u64)` with
//!   BTree-ordered snapshots ([`Snapshot`]) that serialize to the
//!   `BENCH_ops.json` JSON-lines dialect.
//!
//! # Determinism
//!
//! Every event is a pure function of the seed: timestamps are engine
//! ticks, ids are protocol ids, byte costs are wire-encoding lengths.
//! Nothing here reads a wall clock or an OS facility (detlint rules
//! D1/D2 cover this crate), so the recorder fingerprint is invariant
//! across thread counts and machines.
//!
//! Two deliberate carve-outs keep the fingerprint *pinnable*:
//!
//! * **storage-plane events** ([`EventKind::WalAppend`],
//!   [`EventKind::Fsync`], [`EventKind::Compaction`],
//!   [`EventKind::RecoveryScan`]) are recorded — they show up in
//!   `explain` chains and counters — but are **excluded from the
//!   fingerprint fold**, so one pinned value covers the mem and file
//!   backends alike;
//! * **ring overflow** evicts the oldest events from `explain`'s view
//!   but never touches the fingerprint (folded at record time) — the
//!   overflow is counted, not silently dropped.
//!
//! # Cost when off
//!
//! The [`Obs`] handle is a `Clone`-able `Option` around the recorder.
//! The default handle is *off*: every emit/add/observe call is a
//! single `Option` discriminant test and nothing else, which is how
//! the five pinned wire fingerprints stay byte-identical with
//! observability disabled — by construction, not by re-measurement.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use cd_core::rng::splitmix64;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Sentinel op id stamped on events that belong to no foreground op
/// (preload, churn, repair pumping, recovery).
pub const BACKGROUND: u64 = u64::MAX;

/// The structured event vocabulary. Node ids are raw `u32`s (this
/// crate sits below `dh_proto`); byte costs are wire-encoding lengths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A wire envelope left `src` for `dst` (`bytes` on the wire).
    Send {
        /// Sending node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Wire-encoded size of the message.
        bytes: u32,
    },
    /// A wire envelope arrived at `dst`.
    Deliver {
        /// Originating node.
        src: u32,
        /// Receiving node.
        dst: u32,
    },
    /// A progress timer was armed while waiting on `dst`.
    TimerArm {
        /// Node the op is waiting on.
        dst: u32,
        /// Virtual deadline (engine ticks).
        deadline: u64,
    },
    /// A progress timer fired at route step `step`.
    TimerFire {
        /// Route step the op had reached.
        step: u32,
    },
    /// The op gave up on its attempt and restarted (the event's
    /// `attempt` is the *new* attempt number).
    Retry,
    /// A hedge wave extended the scatter contact set.
    Hedge {
        /// Hedge wave number (1-based).
        wave: u32,
    },
    /// A scatter/gather entered its quorum phase at the coordinator.
    QuorumEntry {
        /// Coordinating node.
        coordinator: u32,
        /// Size of the holder clique.
        clique: u32,
        /// Acks needed for quorum.
        need: u32,
    },
    /// A share holder acknowledged a store/fetch.
    ShareAck {
        /// The holder that acked.
        holder: u32,
        /// Share index.
        idx: u32,
    },
    /// A repair frame was pumped from the replica outbox.
    RepairFrame {
        /// Frame source.
        src: u32,
        /// Frame destination.
        dst: u32,
        /// Wire-encoded size.
        bytes: u32,
    },
    /// The failure detector crossed its suspicion threshold for
    /// `node` (up = became suspect, down = cleared).
    SuspicionEdge {
        /// The node whose standing changed.
        node: u32,
        /// `true` when the node became suspect.
        up: bool,
        /// Suspicion level after the transition.
        level: u32,
    },
    /// A WAL record landed on disk (storage plane — not folded into
    /// the fingerprint).
    WalAppend {
        /// Encoded record size.
        bytes: u32,
    },
    /// A group-commit fsync (storage plane).
    Fsync {
        /// Commits batched into this sync.
        batched: u32,
    },
    /// The WAL was compacted (storage plane). Byte counts saturate at
    /// `u32::MAX` — the narrow fields keep [`EventKind`] (and with it
    /// every buffered and ring-resident event) compact.
    Compaction {
        /// Live bytes surviving the rewrite (saturating).
        live_bytes: u32,
        /// WAL length before compaction (saturating).
        wal_bytes: u32,
    },
    /// A recovery scan replayed the WAL at open (storage plane).
    /// Counts saturate at `u32::MAX`.
    RecoveryScan {
        /// Records applied (saturating).
        records: u32,
        /// Records skipped (bad checksum / unknown verb, saturating).
        skipped: u32,
        /// Torn bytes truncated at the tail (saturating).
        torn_bytes: u32,
    },
}

impl EventKind {
    /// Stable discriminant code for the fingerprint fold.
    fn code(self) -> u64 {
        match self {
            EventKind::Send { .. } => 0,
            EventKind::Deliver { .. } => 1,
            EventKind::TimerArm { .. } => 2,
            EventKind::TimerFire { .. } => 3,
            EventKind::Retry => 4,
            EventKind::Hedge { .. } => 5,
            EventKind::QuorumEntry { .. } => 6,
            EventKind::ShareAck { .. } => 7,
            EventKind::RepairFrame { .. } => 8,
            EventKind::SuspicionEdge { .. } => 9,
            EventKind::WalAppend { .. } => 10,
            EventKind::Fsync { .. } => 11,
            EventKind::Compaction { .. } => 12,
            EventKind::RecoveryScan { .. } => 13,
        }
    }

    /// Storage-plane events are recorded and counted but excluded
    /// from the fingerprint, so one pinned value covers the mem and
    /// file backends (see the crate docs).
    pub fn storage_plane(self) -> bool {
        matches!(
            self,
            EventKind::WalAppend { .. }
                | EventKind::Fsync { .. }
                | EventKind::Compaction { .. }
                | EventKind::RecoveryScan { .. }
        )
    }

    /// Payload words folded into the fingerprint, in a fixed order.
    fn fold(self, mut mix: impl FnMut(u64)) {
        match self {
            EventKind::Send { src, dst, bytes } => {
                mix(u64::from(src));
                mix(u64::from(dst));
                mix(u64::from(bytes));
            }
            EventKind::Deliver { src, dst } => {
                mix(u64::from(src));
                mix(u64::from(dst));
            }
            EventKind::TimerArm { dst, deadline } => {
                mix(u64::from(dst));
                mix(deadline);
            }
            EventKind::TimerFire { step } => mix(u64::from(step)),
            EventKind::Retry => {}
            EventKind::Hedge { wave } => mix(u64::from(wave)),
            EventKind::QuorumEntry { coordinator, clique, need } => {
                mix(u64::from(coordinator));
                mix(u64::from(clique));
                mix(u64::from(need));
            }
            EventKind::ShareAck { holder, idx } => {
                mix(u64::from(holder));
                mix(u64::from(idx));
            }
            EventKind::RepairFrame { src, dst, bytes } => {
                mix(u64::from(src));
                mix(u64::from(dst));
                mix(u64::from(bytes));
            }
            EventKind::SuspicionEdge { node, up, level } => {
                mix(u64::from(node));
                mix(u64::from(up));
                mix(u64::from(level));
            }
            // storage plane: never folded
            EventKind::WalAppend { .. }
            | EventKind::Fsync { .. }
            | EventKind::Compaction { .. }
            | EventKind::RecoveryScan { .. } => {}
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EventKind::Send { src, dst, bytes } => write!(f, "send {src} -> {dst} ({bytes} B)"),
            EventKind::Deliver { src, dst } => write!(f, "deliver {src} -> {dst}"),
            EventKind::TimerArm { dst, deadline } => {
                write!(f, "timer armed on {dst} (deadline t={deadline})")
            }
            EventKind::TimerFire { step } => write!(f, "timer fired at route step {step}"),
            EventKind::Retry => write!(f, "retry (fresh attempt)"),
            EventKind::Hedge { wave } => write!(f, "hedge wave {wave}"),
            EventKind::QuorumEntry { coordinator, clique, need } => {
                write!(f, "quorum entry at {coordinator} (clique {clique}, need {need})")
            }
            EventKind::ShareAck { holder, idx } => write!(f, "share ack from {holder} (idx {idx})"),
            EventKind::RepairFrame { src, dst, bytes } => {
                write!(f, "repair frame {src} -> {dst} ({bytes} B)")
            }
            EventKind::SuspicionEdge { node, up, level } => {
                let dir = if up { "suspect" } else { "cleared" };
                write!(f, "suspicion edge: node {node} {dir} (level {level})")
            }
            EventKind::WalAppend { bytes } => write!(f, "wal append ({bytes} B)"),
            EventKind::Fsync { batched } => write!(f, "fsync ({batched} commits batched)"),
            EventKind::Compaction { live_bytes, wal_bytes } => {
                write!(f, "compaction ({wal_bytes} B wal -> {live_bytes} B live)")
            }
            EventKind::RecoveryScan { records, skipped, torn_bytes } => {
                write!(f, "recovery scan ({records} records, {skipped} skipped, {torn_bytes} torn B)")
            }
        }
    }
}

/// One recorded event: virtual timestamp, owning op, attempt, and
/// the payload. Ring order is recording order, so no per-event
/// sequence number is stored — keeping the struct small keeps the
/// ring cache-resident, which is what bounds the recorder's drag on
/// the instrumented hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual engine time (ticks).
    pub at: u64,
    /// Scenario-level op id ([`BACKGROUND`] for non-op traffic).
    pub op: u64,
    /// Attempt the event belongs to (engines stamp 1-based attempt
    /// numbers; 0 marks traffic outside any attempt).
    pub attempt: u32,
    /// The event payload.
    pub kind: EventKind,
}

/// A deterministic log₂-bucket histogram: bucket `b` holds samples
/// `v` with `bit_width(v) == b` (so bucket 0 is exactly `v == 0`).
#[derive(Clone, Debug)]
pub struct Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist { buckets: [0; 65], count: 0, sum: 0, max: 0 }
    }
}

impl Hist {
    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count.max(1) as f64
    }

    /// `q`-quantile, resolved to the **lower bound** of the bucket the
    /// quantile rank lands in (deterministic, never interpolated).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen > rank {
                return if b == 0 { 0 } else { 1u64 << (b - 1) };
            }
        }
        self.max
    }
}

/// The metric key: a static name plus a numeric label (node id, share
/// index, wave — `0` when unused). BTree order makes every snapshot
/// iteration deterministic.
pub type Key = (&'static str, u64);

/// Counters, gauges and histograms behind BTree-ordered storage.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, u64>,
    hists: BTreeMap<Key, Hist>,
}

impl Registry {
    /// Add `v` to the counter `(name, label)`.
    pub fn add(&mut self, name: &'static str, label: u64, v: u64) {
        *self.counters.entry((name, label)).or_insert(0) += v;
    }

    /// Set the gauge `(name, label)` to `v`.
    pub fn gauge(&mut self, name: &'static str, label: u64, v: u64) {
        self.gauges.insert((name, label), v);
    }

    /// Record `sample` into the histogram `(name, label)`.
    pub fn observe(&mut self, name: &'static str, label: u64, sample: u64) {
        self.hists.entry((name, label)).or_default().observe(sample);
    }

    /// Read a counter back (0 when absent).
    pub fn counter(&self, name: &'static str, label: u64) -> u64 {
        self.counters.get(&(name, label)).copied().unwrap_or(0)
    }

    /// Read a gauge back.
    pub fn gauge_value(&self, name: &'static str, label: u64) -> Option<u64> {
        self.gauges.get(&(name, label)).copied()
    }

    /// Read a histogram back.
    pub fn hist(&self, name: &'static str, label: u64) -> Option<&Hist> {
        self.hists.get(&(name, label))
    }

    /// Deterministic point-in-time snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut rows = Vec::new();
        for (&(name, label), &v) in &self.counters {
            rows.push(SnapRow { name, label, value: SnapValue::Counter(v) });
        }
        for (&(name, label), &v) in &self.gauges {
            rows.push(SnapRow { name, label, value: SnapValue::Gauge(v) });
        }
        for (&(name, label), h) in &self.hists {
            rows.push(SnapRow { name, label, value: SnapValue::Hist(Box::new(h.clone())) });
        }
        rows.sort_by(|a, b| (a.name, a.label).cmp(&(b.name, b.label)));
        Snapshot { rows }
    }
}

/// One snapshot row value.
#[derive(Clone, Debug)]
pub enum SnapValue {
    /// Monotone counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(u64),
    /// Log₂-bucket histogram (boxed: the buckets dwarf the scalar
    /// variants).
    Hist(Box<Hist>),
}

/// One `(name, label)` entry of a [`Snapshot`].
#[derive(Clone, Debug)]
pub struct SnapRow {
    /// Metric name.
    pub name: &'static str,
    /// Numeric label (node id, share index, … — 0 when unused).
    pub label: u64,
    /// The value.
    pub value: SnapValue,
}

/// A BTree-ordered, deterministic snapshot of a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Rows sorted by `(name, label)`.
    pub rows: Vec<SnapRow>,
}

impl Snapshot {
    /// Sum of a counter over all labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.name == name)
            .map(|r| match &r.value {
                SnapValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// All `(label, value)` pairs of a counter, in label order.
    pub fn counter_series(&self, name: &str) -> Vec<(u64, u64)> {
        self.rows
            .iter()
            .filter_map(|r| match &r.value {
                SnapValue::Counter(v) if r.name == name => Some((r.label, *v)),
                _ => None,
            })
            .collect()
    }

    /// Merge all labels of a histogram metric into one histogram.
    pub fn hist_merged(&self, name: &str) -> Hist {
        let mut out = Hist::default();
        for r in &self.rows {
            if let (true, SnapValue::Hist(h)) = (r.name == name, &r.value) {
                out.merge(h);
            }
        }
        out
    }

    /// Serialize to the `BENCH_ops.json` JSON-lines dialect: one line
    /// per metric *name* (labels aggregated — counters sum, gauges
    /// max, histograms merge into p50/p99/p999), each tagged
    /// `"schema": 1` and a `unit` inferred from the name (`bytes` if
    /// the name mentions bytes, `ticks` for histograms — virtual
    /// engine time — and `count` otherwise). `prefix` becomes the
    /// bench-name prefix, `n` the workload size column.
    pub fn to_json_lines(&self, prefix: &str, n: usize) -> Vec<String> {
        let mut names: Vec<&'static str> = self.rows.iter().map(|r| r.name).collect();
        names.dedup();
        let mut out = Vec::new();
        for name in names {
            let unit_bytes = name.contains("bytes");
            let mut counter_sum = 0u64;
            let mut gauge_max: Option<u64> = None;
            let mut hist = Hist::default();
            for r in self.rows.iter().filter(|r| r.name == name) {
                match &r.value {
                    SnapValue::Counter(v) => counter_sum += v,
                    SnapValue::Gauge(v) => gauge_max = Some(gauge_max.unwrap_or(0).max(*v)),
                    SnapValue::Hist(h) => hist.merge(h),
                }
            }
            let bench = format!("{prefix}/{name}");
            if hist.count() > 0 {
                let unit = if unit_bytes { "bytes" } else { "ticks" };
                out.push(format!(
                    "{{\"schema\": 1, \"bench\": \"{bench}\", \"n\": {n}, \"ns_per_op\": {:.1}, \
                     \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \"p999_ns\": {:.1}, \"unit\": \"{unit}\"}}",
                    hist.mean(),
                    hist.quantile(0.50) as f64,
                    hist.quantile(0.99) as f64,
                    hist.quantile(0.999) as f64,
                ));
            } else {
                let v = gauge_max.unwrap_or(counter_sum);
                let unit = if unit_bytes { "bytes" } else { "count" };
                out.push(format!(
                    "{{\"schema\": 1, \"bench\": \"{bench}\", \"n\": {n}, \"ns_per_op\": {v}.0, \
                     \"unit\": \"{unit}\"}}"
                ));
            }
        }
        out
    }
}

/// The reconstructed causal chain of one op (see [`Obs::explain`]).
#[derive(Clone, Debug)]
pub struct Explain {
    /// The op being explained.
    pub op: u64,
    /// Its events, in record order.
    pub events: Vec<Event>,
    /// `true` when the ring overflowed at some point, so the chain's
    /// *head* may have been evicted (the tail is always intact).
    pub truncated: bool,
}

impl Explain {
    /// Count events matching a predicate.
    fn count(&self, f: impl Fn(&EventKind) -> bool) -> usize {
        self.events.iter().filter(|e| f(&e.kind)).count()
    }

    /// Number of attempts observed. Protocol events carry 1-based
    /// attempt numbers; plane events stamped with attempt 0 (storage,
    /// suspicion) still witness one attempt.
    pub fn attempts(&self) -> u32 {
        self.events.iter().map(|e| e.attempt).max().map_or(0, |m| m.max(1))
    }

    /// Number of retries (attempt restarts).
    pub fn retries(&self) -> usize {
        self.count(|k| matches!(k, EventKind::Retry))
    }

    /// Number of hedge waves.
    pub fn hedges(&self) -> usize {
        self.count(|k| matches!(k, EventKind::Hedge { .. }))
    }

    /// Number of timer fires.
    pub fn timer_fires(&self) -> usize {
        self.count(|k| matches!(k, EventKind::TimerFire { .. }))
    }

    /// Number of share acks.
    pub fn acks(&self) -> usize {
        self.count(|k| matches!(k, EventKind::ShareAck { .. }))
    }

    /// Total bytes sent on behalf of this op.
    pub fn bytes_sent(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                EventKind::Send { bytes, .. } => u64::from(bytes),
                _ => 0,
            })
            .sum()
    }

    /// Suspect nodes this op tripped over (nodes named by an up-going
    /// suspicion edge).
    pub fn suspects_blamed(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::SuspicionEdge { node, up: true, .. } => Some(node),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "op {}: {} events, {} attempt(s), {} retry(s), {} hedge wave(s), {} timer fire(s), \
             {} ack(s), {} B sent{}",
            self.op,
            self.events.len(),
            self.attempts(),
            self.retries(),
            self.hedges(),
            self.timer_fires(),
            self.acks(),
            self.bytes_sent(),
            if self.truncated { " [head may be truncated: ring overflowed]" } else { "" },
        )?;
        let t0 = self.events.first().map(|e| e.at).unwrap_or(0);
        for e in &self.events {
            writeln!(f, "  t={:<8} a{} {}", e.at.saturating_sub(t0), e.attempt, e.kind)?;
        }
        Ok(())
    }
}

/// A unit of not-yet-encoded recording work: the emit path enqueues
/// (O(1) under the lock) and the fold/ring encoding runs lazily when
/// the recorder is read — the instrumented hot path never pays it.
#[derive(Debug)]
enum Queued {
    /// One engine run's buffered events, stamped with the op context
    /// current at flush time (a run executes under a single op).
    Batch { ctx: u64, buf: Vec<(u64, u32, EventKind)> },
    /// A single directly-emitted event; `at: None` means "stamp with
    /// the wire time current when the drain reaches this entry" (the
    /// storage plane has no clock of its own).
    One { ctx: u64, at: Option<u64>, attempt: u32, kind: EventKind },
    /// Up to [`ADDS_MAX`] counter increments captured alloc-free —
    /// the per-op stats export defers its registry work here.
    Adds { n: u8, entries: [(&'static str, u64, u64); ADDS_MAX] },
    /// A mixed per-op stats export: the first `adds` entries are
    /// counter increments, the next `observes` are histogram samples.
    /// One queue slot defers a whole quorum-read pricing.
    Stats { adds: u8, observes: u8, entries: [(&'static str, u64, u64); ADDS_MAX] },
}

/// Capacity of a deferred [`Queued::Adds`] entry.
const ADDS_MAX: usize = 12;

/// The flight recorder: a bounded event ring plus the registry, a
/// monotone sequence counter, a running protocol-plane fingerprint,
/// and the current op context.
#[derive(Debug)]
pub struct Recorder {
    ring: std::collections::VecDeque<Event>,
    cap: usize,
    seq: u64,
    overflow: u64,
    fp: u64,
    ctx: u64,
    last_at: u64,
    /// Enqueued-but-unencoded events, in arrival order. Drained (in
    /// order, so the fold and the ring are identical to immediate
    /// encoding) before any read of event-derived state.
    queue: std::collections::VecDeque<Queued>,
    /// Recycled batch buffers handed back to flushing engines.
    spare: Vec<Vec<(u64, u32, EventKind)>>,
    registry: Registry,
    /// Dense per-node delivery counts (index = node id). Kept out of
    /// the string-keyed registry map — thousands of per-node labels
    /// would bloat it and tax every other counter add — and merged
    /// into snapshots as `load/deliver` rows at read time.
    node_loads: Vec<u64>,
}

impl Recorder {
    /// A recorder whose ring holds at most `cap` events (≥ 1).
    pub fn new(cap: usize) -> Self {
        // pre-fault the ring's backing pages up front: drains then
        // write into warm memory instead of advancing the heap
        // frontier mid-run, which would charge minor faults (and the
        // allocator churn around them) to the instrumented pass
        let pre = cap.clamp(1, 1 << 17);
        let mut ring = std::collections::VecDeque::with_capacity(pre);
        let blank =
            Event { at: 0, op: BACKGROUND, attempt: 0, kind: EventKind::Retry };
        ring.resize(pre, blank);
        ring.clear();
        Recorder {
            ring,
            cap: cap.max(1),
            seq: 0,
            overflow: 0,
            fp: 0xcbf2_9ce4_8422_2325,
            ctx: BACKGROUND,
            last_at: 0,
            queue: std::collections::VecDeque::new(),
            spare: Vec::new(),
            registry: Registry::default(),
            node_loads: Vec::new(),
        }
    }

    /// Enqueue one event (encoded on the next read). `at: None`
    /// defers the timestamp to the storage-plane rule.
    pub fn enqueue(&mut self, at: Option<u64>, attempt: u32, kind: EventKind) {
        self.queue.push_back(Queued::One { ctx: self.ctx, at, attempt, kind });
    }

    /// Take ownership of a flushing engine's event buffer (leaving an
    /// empty one behind) and enqueue it whole — the caller's cost is
    /// O(1) regardless of the buffer length.
    pub fn enqueue_batch(&mut self, buf: &mut Vec<(u64, u32, EventKind)>) {
        // swap a recycled buffer back in while the lock is already
        // held — the caller's next run fills warm capacity instead of
        // re-growing from zero on its own (timed) path
        let full = std::mem::replace(buf, self.take_spare());
        self.queue.push_back(Queued::Batch { ctx: self.ctx, buf: full });
    }

    /// Hand out a recycled (cache-warm) event buffer for an engine to
    /// fill, or a fresh one when none has come back through
    /// [`Self::drain`] yet.
    pub fn take_spare(&mut self) -> Vec<(u64, u32, EventKind)> {
        self.spare.pop().unwrap_or_else(|| Vec::with_capacity(256))
    }

    /// Encode everything enqueued so far into the fold and the ring.
    /// FIFO order makes the result identical to immediate encoding;
    /// the live op context is restored afterwards.
    pub fn drain(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        let live = self.ctx;
        while let Some(q) = self.queue.pop_front() {
            match q {
                Queued::Batch { ctx, mut buf } => {
                    self.ctx = ctx;
                    for &(at, attempt, kind) in &buf {
                        self.record(at, attempt, kind);
                    }
                    buf.clear();
                    if self.spare.len() < 32 {
                        self.spare.push(buf);
                    }
                }
                Queued::One { ctx, at, attempt, kind } => {
                    self.ctx = ctx;
                    self.record(at.unwrap_or(self.last_at), attempt, kind);
                }
                Queued::Adds { n, entries } => {
                    for &(name, label, v) in &entries[..usize::from(n)] {
                        self.registry.add(name, label, v);
                    }
                }
                Queued::Stats { adds, observes, entries } => {
                    let (a, o) = (usize::from(adds), usize::from(observes));
                    for &(name, label, v) in &entries[..a] {
                        self.registry.add(name, label, v);
                    }
                    for &(name, label, v) in &entries[a..a + o] {
                        self.registry.observe(name, label, v);
                    }
                }
            }
        }
        self.ctx = live;
    }

    /// Entries waiting in the deferred-encoding queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Defer a batch of counter increments (≤ `ADDS_MAX`) through
    /// the queue; larger batches are applied immediately.
    pub fn enqueue_adds(&mut self, adds: &[(&'static str, u64, u64)]) {
        if adds.len() <= ADDS_MAX {
            let mut entries = [("", 0u64, 0u64); ADDS_MAX];
            entries[..adds.len()].copy_from_slice(adds);
            self.queue.push_back(Queued::Adds { n: adds.len() as u8, entries });
        } else {
            for &(name, label, v) in adds {
                self.registry.add(name, label, v);
            }
        }
    }

    /// Defer a mixed batch of counter increments and histogram
    /// samples (≤ `ADDS_MAX` combined) as one alloc-free queue
    /// entry; larger batches are applied immediately.
    pub fn enqueue_stats(
        &mut self,
        adds: &[(&'static str, u64, u64)],
        observes: &[(&'static str, u64, u64)],
    ) {
        if adds.len() + observes.len() <= ADDS_MAX {
            let mut entries = [("", 0u64, 0u64); ADDS_MAX];
            entries[..adds.len()].copy_from_slice(adds);
            entries[adds.len()..adds.len() + observes.len()].copy_from_slice(observes);
            self.queue.push_back(Queued::Stats {
                adds: adds.len() as u8,
                observes: observes.len() as u8,
                entries,
            });
        } else {
            for &(name, label, v) in adds {
                self.registry.add(name, label, v);
            }
            for &(name, label, v) in observes {
                self.registry.observe(name, label, v);
            }
        }
    }

    /// Registry snapshot with the dense per-node delivery loads
    /// merged in as `load/deliver` counter rows.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = self.registry.snapshot();
        for (i, &v) in self.node_loads.iter().enumerate() {
            if v != 0 {
                snap.rows.push(SnapRow {
                    name: "load/deliver",
                    label: i as u64,
                    value: SnapValue::Counter(v),
                });
            }
        }
        snap.rows.sort_by(|a, b| (a.name, a.label).cmp(&(b.name, b.label)));
        snap
    }

    /// Record one event at virtual time `at`. The fingerprint folds
    /// protocol-plane events only; the ring keeps everything, evicting
    /// the oldest event (counted in `overflow`) at capacity.
    pub fn record(&mut self, at: u64, attempt: u32, kind: EventKind) {
        self.last_at = at;
        if let EventKind::Deliver { dst, .. } = kind {
            // per-node load falls straight out of the event stream
            // (the congestion the paper's Definition 3 bounds is "how
            // many messages land on each server")
            let dst = dst as usize;
            if self.node_loads.len() <= dst {
                self.node_loads.resize(dst + 1, 0);
            }
            self.node_loads[dst] += 1;
        }
        if !kind.storage_plane() {
            let mut h = self.fp;
            let mut mix = |v: u64| h = splitmix64(h ^ v);
            mix(at);
            mix(self.ctx);
            mix(u64::from(attempt));
            mix(kind.code());
            kind.fold(&mut mix);
            self.fp = h;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.overflow += 1;
        }
        self.ring.push_back(Event { at, op: self.ctx, attempt, kind });
        self.seq += 1;
    }

    /// Record a storage-plane event stamped with the last-seen engine
    /// time (storage has no clock of its own).
    pub fn record_storage(&mut self, kind: EventKind) {
        let at = self.last_at;
        self.record(at, 0, kind);
    }

    /// Set the op context stamped on subsequent events.
    pub fn begin_op(&mut self, op: u64) {
        self.ctx = op;
    }

    /// Running protocol-plane fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Events evicted from the ring so far.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Events recorded so far (evicted or not).
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// The registry (metrics side).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable registry access.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Reconstruct the causal chain of `op` from the events still in
    /// the ring.
    pub fn explain(&self, op: u64) -> Explain {
        Explain {
            op,
            events: self.ring.iter().filter(|e| e.op == op).copied().collect(),
            truncated: self.overflow > 0,
        }
    }
}

/// The cheap, clonable observability handle threaded through the
/// engine, replica, store and benches. `Obs::default()` /
/// [`Obs::off`] is a no-op sink: every call is one `Option` test.
///
/// The live recorder sits behind an `Arc<Mutex<_>>` so the handle is
/// `Send + Sync` and a store carrying one still satisfies the sharded
/// runtime's `Shelves + Sync` bounds. The lock is uncontended in
/// every deterministic scenario (ops are issued sequentially); if a
/// caller does record from parallel shards, counters and histograms
/// stay exact (sums commute) but event order — and therefore the
/// fingerprint — is only meaningful single-threaded.
#[derive(Clone, Default, Debug)]
pub struct Obs {
    inner: Option<Arc<Mutex<Recorder>>>,
}

impl Obs {
    /// The no-op sink (the default).
    pub fn off() -> Self {
        Obs { inner: None }
    }

    /// A live recorder with ring capacity `cap`.
    pub fn recording(cap: usize) -> Self {
        Obs { inner: Some(Arc::new(Mutex::new(Recorder::new(cap)))) }
    }

    /// Is a recorder attached?
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Run `f` on the live recorder, if any. A poisoned lock (a
    /// panicking recorder user) drops the observation rather than
    /// propagating the panic into protocol code.
    fn with<R>(&self, f: impl FnOnce(&mut Recorder) -> R) -> Option<R> {
        let r = self.inner.as_ref()?;
        let mut guard = r.lock().ok()?;
        Some(f(&mut guard))
    }

    /// Set the op context stamped on subsequent events ([`BACKGROUND`]
    /// for non-op traffic). Also drains the deferred-encoding queue —
    /// op boundaries sit off the latency-critical path, so the
    /// encode work lands here and the freed buffers recycle while
    /// still cache-warm.
    pub fn begin_op(&self, op: u64) {
        self.with(|r| {
            // batched housekeeping: encode only once the queue has
            // grown — one cache-polluting drain per ~dozens of ops,
            // not one per op — while keeping buffers circulating
            if r.queued() >= 64 {
                r.drain();
            }
            r.begin_op(op);
        });
    }

    /// A recycled event buffer for an engine run (empty when off).
    pub fn take_buf(&self) -> Vec<(u64, u32, EventKind)> {
        self.with(Recorder::take_spare).unwrap_or_default()
    }

    /// Record one protocol-plane event at virtual time `at`.
    #[inline]
    pub fn emit(&self, at: u64, attempt: u32, kind: EventKind) {
        if self.inner.is_some() {
            self.with(|r| r.enqueue(Some(at), attempt, kind));
        }
    }

    /// Record a storage-plane event (stamped with the last-seen
    /// engine time).
    #[inline]
    pub fn emit_storage(&self, kind: EventKind) {
        if self.inner.is_some() {
            self.with(|r| r.enqueue(None, 0, kind));
        }
    }

    /// Add `v` to the counter `(name, label)`.
    #[inline]
    pub fn add(&self, name: &'static str, label: u64, v: u64) {
        if self.inner.is_some() {
            self.with(|r| r.registry_mut().add(name, label, v));
        }
    }

    /// Drain a buffer of `(at, attempt, kind)` events into the ring
    /// under a single lock. Engines buffer their protocol-plane
    /// events locally (a plain `Vec` push per event) and flush once
    /// per run — the per-message path never pays the lock.
    pub fn emit_batch(&self, buf: &mut Vec<(u64, u32, EventKind)>) {
        if self.inner.is_some() {
            self.with(|r| r.enqueue_batch(buf));
        } else {
            buf.clear();
        }
    }

    /// Add a batch of `(name, label, value)` counter increments under
    /// a single lock — instrumented layers that export a dozen
    /// counters per op pay one lock and one memcpy; the map updates
    /// ride the deferred-encoding queue.
    pub fn add_many(&self, entries: &[(&'static str, u64, u64)]) {
        if self.inner.is_some() {
            self.with(|r| r.enqueue_adds(entries));
        }
    }

    /// Run `f` against the registry under a single lock (no-op when
    /// off) — for mixed counter/gauge/histogram updates that belong
    /// to one logical export.
    pub fn registry_apply(&self, f: impl FnOnce(&mut Registry)) {
        if self.inner.is_some() {
            self.with(|r| f(r.registry_mut()));
        }
    }

    /// Defer a mixed batch of counter increments and histogram
    /// samples under a single lock; the map updates ride the
    /// deferred-encoding queue like [`Self::add_many`].
    pub fn stats_many(
        &self,
        adds: &[(&'static str, u64, u64)],
        observes: &[(&'static str, u64, u64)],
    ) {
        if self.inner.is_some() {
            self.with(|r| r.enqueue_stats(adds, observes));
        }
    }

    /// Set the gauge `(name, label)`.
    #[inline]
    pub fn gauge(&self, name: &'static str, label: u64, v: u64) {
        if self.inner.is_some() {
            self.with(|r| r.registry_mut().gauge(name, label, v));
        }
    }

    /// Record `sample` into the histogram `(name, label)`.
    #[inline]
    pub fn observe(&self, name: &'static str, label: u64, sample: u64) {
        if self.inner.is_some() {
            self.with(|r| r.registry_mut().observe(name, label, sample));
        }
    }

    /// Running protocol-plane fingerprint (0 when off).
    pub fn fingerprint(&self) -> u64 {
        self.with(|r| {
            r.drain();
            r.fingerprint()
        })
        .unwrap_or(0)
    }

    /// Ring evictions so far.
    pub fn overflow(&self) -> u64 {
        self.with(|r| {
            r.drain();
            r.overflow()
        })
        .unwrap_or(0)
    }

    /// Events recorded so far.
    pub fn recorded(&self) -> u64 {
        self.with(|r| {
            r.drain();
            r.recorded()
        })
        .unwrap_or(0)
    }

    /// Reconstruct the causal chain of `op`. `None` when off.
    pub fn explain(&self, op: u64) -> Option<Explain> {
        self.with(|r| {
            r.drain();
            r.explain(op)
        })
    }

    /// Snapshot the registry, per-node load table included (empty
    /// when off).
    pub fn snapshot(&self) -> Snapshot {
        self.with(|r| {
            r.drain();
            r.snapshot()
        })
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(n: u32) -> EventKind {
        EventKind::Send { src: n, dst: n + 1, bytes: 8 }
    }

    #[test]
    fn ring_overflow_counted_fingerprint_stable() {
        let a = Obs::recording(4);
        let b = Obs::recording(1 << 12);
        for i in 0..64u32 {
            a.emit(u64::from(i), 0, send(i));
            b.emit(u64::from(i), 0, send(i));
        }
        assert_eq!(a.overflow(), 60, "evictions past capacity are counted");
        assert_eq!(b.overflow(), 0);
        assert_eq!(a.recorded(), 64);
        // overflow never perturbs the fingerprint: it folds at record
        // time, not from the ring
        assert_eq!(a.fingerprint(), b.fingerprint());
        // the ring keeps the newest events
        let ex = a.explain(BACKGROUND).expect("recording");
        assert_eq!(ex.events.len(), 4);
        assert!(ex.truncated);
        assert_eq!(ex.events.last().map(|e| e.at), Some(63));
    }

    #[test]
    fn storage_plane_excluded_from_fingerprint() {
        let a = Obs::recording(64);
        let b = Obs::recording(64);
        a.emit(5, 0, send(1));
        b.emit(5, 0, send(1));
        // only `b` sees storage traffic — fingerprints must agree
        b.emit_storage(EventKind::WalAppend { bytes: 33 });
        b.emit_storage(EventKind::Fsync { batched: 4 });
        a.emit(9, 1, EventKind::Retry);
        b.emit(9, 1, EventKind::Retry);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // …but the events are recorded, not dropped
        assert_eq!(b.recorded(), 4);
        assert_eq!(b.explain(BACKGROUND).expect("recording").events.len(), 4);
    }

    #[test]
    fn explain_filters_by_op_context() {
        let o = Obs::recording(64);
        o.begin_op(7);
        o.emit(1, 0, send(1));
        o.emit(2, 0, EventKind::Hedge { wave: 1 });
        o.begin_op(8);
        o.emit(3, 0, send(2));
        let ex = o.explain(7).expect("recording");
        assert_eq!(ex.events.len(), 2);
        assert_eq!(ex.hedges(), 1);
        assert!(!ex.truncated);
        assert_eq!(o.explain(8).expect("recording").events.len(), 1);
    }

    #[test]
    fn registry_snapshot_is_btree_ordered_and_aggregates() {
        let o = Obs::recording(8);
        o.add("zeta", 0, 3);
        o.add("alpha", 2, 1);
        o.add("alpha", 1, 5);
        o.gauge("gmax", 0, 9);
        for v in [1u64, 2, 4, 1000] {
            o.observe("lat_ticks", 0, v);
        }
        let s = o.snapshot();
        let names: Vec<&str> = s.rows.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["alpha", "alpha", "gmax", "lat_ticks", "zeta"]);
        assert_eq!(s.counter_total("alpha"), 6);
        assert_eq!(s.counter_series("alpha"), vec![(1, 5), (2, 1)]);
        let h = s.hist_merged("lat_ticks");
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1000);
        assert!(h.quantile(0.999) >= 512, "p999 lands in the 1000-sample's bucket");
        let lines = s.to_json_lines("t", 10);
        assert_eq!(lines.len(), 4, "one line per metric name");
        assert!(lines.iter().all(|l| l.contains("\"schema\": 1")));
        assert!(lines[0].contains("\"bench\": \"t/alpha\"") && lines[0].contains("6.0"));
    }

    #[test]
    fn off_handle_is_inert() {
        let o = Obs::off();
        o.emit(1, 0, send(1));
        o.add("x", 0, 1);
        assert!(!o.is_on());
        assert_eq!(o.recorded(), 0);
        assert_eq!(o.fingerprint(), 0);
        assert!(o.explain(0).is_none());
        assert!(o.snapshot().rows.is_empty());
    }

    #[test]
    fn hist_quantiles_deterministic() {
        let mut h = Hist::default();
        for v in 0..100u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.0), 0);
        // p50 of 0..100 lands in bucket of 49 (bit width 6) -> lower bound 32
        assert_eq!(h.quantile(0.5), 32);
        assert_eq!(h.quantile(1.0), 64, "top bucket lower bound");
        assert_eq!(h.max(), 99);
    }
}
