//! Integration tests for the substrate crates working together:
//! geometry → expander, erasure → fault storage, emulation ↔ dht.

use continuous_discrete::core::rng::seeded;
use continuous_discrete::core::Point2;
use continuous_discrete::expander::spectral::analyze;
use continuous_discrete::expander::GgExpander;
use continuous_discrete::geometry::TorusVoronoi;
use rand::Rng;

#[test]
fn voronoi_feeds_expander_consistently() {
    let mut rng = seeded(0x6E0);
    let pts: Vec<(f64, f64)> = (0..100).map(|_| (rng.gen(), rng.gen())).collect();
    let voronoi = TorusVoronoi::build(&pts);
    let n = voronoi.len();
    let x = GgExpander::from_voronoi(voronoi);
    assert_eq!(x.len(), n);
    // full adjacency must contain the Voronoi adjacency
    let full = x.full_adjacency();
    for (i, adj) in full.iter().enumerate() {
        for j in x.voronoi().neighbors(i) {
            assert!(adj.contains(&j), "Voronoi edge {i}↔{j} missing from network");
        }
    }
    let r = analyze(&full, 300, 5);
    assert!(r.gap > 0.0);
}

#[test]
fn continuous_gg_maps_match_discrete_shear() {
    // the exact fixed-point Gabber-Galil maps in cd-core and the f64
    // shears used by the discretisation agree on sample points
    let mut rng = seeded(0x66);
    for _ in 0..200 {
        let p = Point2::from_bits(rng.gen(), rng.gen());
        let (x, y) = p.to_f64();
        let f = p.gg_f().to_f64();
        let expect = ((x + y) % 1.0, y);
        assert!((f.0 - expect.0).abs() < 1e-9 || (f.0 - expect.0).abs() > 1.0 - 1e-9);
        assert!((f.1 - expect.1).abs() < 1e-12);
    }
}

#[test]
fn erasure_threshold_matches_fault_coverage() {
    // the fault crate's clique of covers must be able to host k-of-m
    // shares: mean coverage well above common thresholds
    let mut rng = seeded(0xE5);
    let net = continuous_discrete::fault::OverlapNet::build(512, &mut rng);
    let (min_cov, _) = net.coverage_stats(300, &mut rng);
    assert!(min_cov >= 2, "coverage {min_cov} too thin for erasure coding");
    let mut store = continuous_discrete::fault::storage::ErasureStore::new(2);
    let loc = continuous_discrete::core::Point(rng.gen());
    let placed = store.put(&net, 1, loc, b"cross-crate");
    assert!(placed >= 2);
    let from = continuous_discrete::fault::OverlapNodeId(0);
    let (v, _) = store.get(&net, from, 1, &mut rng).expect("reconstructs");
    assert_eq!(v, b"cross-crate");
}

#[test]
fn emulated_debruijn_agrees_with_dht_analysis() {
    // Section 2's DHT == Section 7's emulation of the De Bruijn family
    // on the same evenly spaced hosts: degree profiles must agree.
    use continuous_discrete::dht::analysis::graph_stats;
    use continuous_discrete::emulation::{Emulation, GraphFamily};
    let hosts = continuous_discrete::core::pointset::PointSet::evenly_spaced(64);
    let direct = graph_stats(&hosts, 2);
    let emu = Emulation::new(GraphFamily::DeBruijn, 6, hosts);
    let s = emu.stats();
    // both views are constant-degree and within a small constant of
    // each other (the emulation counts undirected guest edges incl.
    // both De Bruijn directions)
    assert!(s.max_host_degree <= 2 * (direct.max_out_degree + direct.max_in_degree));
    assert!(s.max_host_degree >= direct.max_out_degree);
}
