//! Integration tests spanning crates: the full DHT stack (network +
//! storage + caching) under churn, and cross-checks between the
//! analysis view and the runtime network.

use bytes::Bytes;
use continuous_discrete::caching::CachedDht;
use continuous_discrete::core::hashing::KWiseHash;
use continuous_discrete::core::pointset::PointSet;
use continuous_discrete::core::rng::seeded;
use continuous_discrete::core::Point;
use continuous_discrete::dht::analysis::graph_stats;
use continuous_discrete::dht::driver::{permutation_routing, random_lookups, random_permutation};
use continuous_discrete::dht::storage::Dht;
use continuous_discrete::dht::{DhNetwork, LookupKind};
use rand::Rng;

#[test]
fn full_stack_storage_caching_churn() {
    let mut rng = seeded(0xE2E);
    let net = DhNetwork::new(&PointSet::random(128, &mut rng));
    let mut dht = Dht::new(net, &mut rng);

    // store 64 items
    for key in 0..64u64 {
        let from = dht.net.random_node(&mut rng);
        dht.put(from, key, Bytes::from(key.to_le_bytes().to_vec()), &mut rng);
    }
    // heavy churn
    for _ in 0..200 {
        if dht.net.len() > 16 && rng.gen_bool(0.5) {
            let v = dht.net.random_node(&mut rng);
            dht.net.leave(v);
        } else {
            dht.net.join(Point(rng.gen()));
        }
    }
    dht.net.validate();
    // everything still retrievable, paths still logarithmic-ish
    let bound = 2.0 * (dht.net.len() as f64).log2() + 40.0;
    for key in 0..64u64 {
        let from = dht.net.random_node(&mut rng);
        let (route, value) = dht.get(from, key, &mut rng);
        assert_eq!(value, Some(Bytes::from(key.to_le_bytes().to_vec())));
        assert!((route.hops() as f64) < bound);
    }
}

#[test]
fn analysis_agrees_with_runtime_network() {
    // the exact analysis (Theorems 2.1/2.2) and the runtime neighbor
    // tables must tell a consistent story: runtime tables contain the
    // analysis edges (they add the ring and backward slack, never less)
    let mut rng = seeded(0xA9A);
    let ps = PointSet::random(64, &mut rng);
    let net = DhNetwork::new(&ps);
    let stats = graph_stats(&ps, 2);
    let (runtime_max, _) = net.degree_stats();
    assert!(
        runtime_max + 1 >= stats.max_out_degree,
        "runtime tables ({runtime_max}) must cover the exact out-edges ({})",
        stats.max_out_degree
    );
    // every exact out-neighbor is present in the runtime table
    for i in 0..ps.len() {
        let x = ps.point(i);
        let id = net.cover_of(x);
        let table: Vec<_> = net.node(id).neighbors.iter().map(|nb| nb.id).collect();
        for j in continuous_discrete::dht::analysis::out_neighbors(&ps, i, 2) {
            if j == i {
                continue;
            }
            let jid = net.cover_of(ps.point(j));
            assert!(
                table.contains(&jid) || jid == id,
                "exact edge {i}→{j} missing from runtime table"
            );
        }
    }
}

#[test]
fn caching_on_top_of_balanced_ids() {
    // balance + caching together: multiple-choice IDs give a smooth
    // network on which the caching bounds are tight
    let mut rng = seeded(0xCAC);
    let ring = continuous_discrete::balance::IdStrategy::MultipleChoice { t: 3 }
        .build_ring(256, &mut rng);
    let hosts = PointSet::new(ring.iter().collect());
    assert!(hosts.smoothness() <= 32.0);
    let net = DhNetwork::new(&hosts);
    let hash = KWiseHash::new(16, &mut rng);
    let mut cache = CachedDht::new(net, hash, 8);
    for _ in 0..300 {
        let from = cache.net.random_node(&mut rng);
        let served = cache.request(from, 5, &mut rng);
        assert!(served.hops <= 2 * 8 + 6, "hops {}", served.hops);
    }
    let tree = cache.tree(5).expect("tree exists");
    tree.validate();
    assert!(tree.len() > 1);
}

#[test]
fn permutation_routing_beats_averaging_bound() {
    let n = 256usize;
    let net = DhNetwork::new(&PointSet::evenly_spaced(n));
    let mut rng = seeded(0x9E9);
    let perm = random_permutation(&net, &mut rng);
    let r = permutation_routing(&net, LookupKind::DistanceHalving, &perm, 77);
    // lower bound from the averaging argument: some server sees Ω(log n)
    let logn = (n as f64).log2();
    assert!(r.max_load as f64 >= logn / 4.0, "max load {} suspiciously small", r.max_load);
    assert!(r.max_load as f64 <= 8.0 * logn, "max load {} not O(log n)", r.max_load);
}

#[test]
fn lookup_kinds_agree_on_destination() {
    let mut rng = seeded(0xDE5);
    let net = DhNetwork::new(&PointSet::random(100, &mut rng));
    for _ in 0..100 {
        let from = net.random_node(&mut rng);
        let target = Point(rng.gen());
        let fast = net.fast_lookup(from, target);
        let dh = net.dh_lookup(from, target, &mut rng);
        assert_eq!(fast.destination(), dh.destination());
        assert_eq!(fast.destination(), net.cover_of(target));
    }
}

#[test]
fn parallel_driver_matches_sequential_destinations() {
    // the rayon driver must produce the same deterministic result set
    let net = DhNetwork::new(&PointSet::evenly_spaced(64));
    let a = random_lookups(&net, LookupKind::DistanceHalving, 500, 31);
    let b = random_lookups(&net, LookupKind::DistanceHalving, 500, 31);
    assert_eq!(a.path_lengths, b.path_lengths);
    assert_eq!(a.max_load, b.max_load);
}
