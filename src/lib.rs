//! # continuous-discrete
//!
//! Facade crate for the Rust reproduction of Naor & Wieder,
//! *“Novel Architectures for P2P Applications: the Continuous-Discrete
//! Approach”* (SPAA 2003). Re-exports every subsystem crate under one
//! roof so examples, integration tests and downstream users can depend
//! on a single package.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use cd_core as core;
pub use cd_emulation as emulation;
pub use cd_expander as expander;
pub use cd_geometry as geometry;
pub use dh_balance as balance;
pub use dh_caching as caching;
pub use dh_dht as dht;
pub use dh_erasure as erasure;
pub use dh_fault as fault;
pub use dh_obs as obs;
pub use dh_proto as proto;
pub use dh_replica as replica;
pub use dh_store as store;
pub use p2p_baselines as baselines;
