//! Durability on the wire: store an item as 8 Reed-Solomon shares on
//! its §6.2 cover clique, kill any 4 covers (m − k), and read it back
//! at quorum — then churn the network and watch repair re-materialize
//! the lost shares.
//!
//! ```sh
//! cargo run --release --example replicated_put
//! ```

use continuous_discrete::core::pointset::PointSet;
use continuous_discrete::core::rng::seeded;
use continuous_discrete::core::Point;
use continuous_discrete::dht::DhNetwork;
use continuous_discrete::proto::engine::RetryPolicy;
use continuous_discrete::proto::transport::Inline;
use continuous_discrete::proto::{FaultModel, Faulty};
use continuous_discrete::replica::ReplicatedDht;
use bytes::Bytes;
use rand::Rng;

fn main() {
    let mut rng = seeded(42);
    let n = 1_024usize;
    let net = DhNetwork::new(&PointSet::random(n, &mut rng));
    let (m, k) = (8u8, 4u8);
    let mut store = ReplicatedDht::new(net, m, k, &mut rng);
    println!("replicated store on {n} servers: m = {m} shares per item, any k = {k} reconstruct");

    // a routed PutShares op: lookup to the clique, StoreShare fan-out,
    // completes at k acks — every message modeled and priced
    let from = store.net.random_node(&mut rng);
    let key = 7u64;
    let value = Bytes::from_static(b"the data stored by any small subset of the servers suffices");
    let placed = store.put(from, key, value.clone(), &mut rng);
    let clique = store.clique(key);
    println!("put: {placed} sealed shares placed on the cover clique {clique:?}");

    // disaster: any m − k covers fail-stop — the primary included
    let dead: Vec<_> = clique.iter().take((m - k) as usize).copied().collect();
    let make_faulty = |_: usize| {
        let mut f = Faulty::new(Inline, FaultModel::FailStop);
        for &d in &dead {
            f.fail(d);
        }
        f
    };
    println!("fail-stopping {} covers (the primary among them): {dead:?}", dead.len());
    let reader = loop {
        let c = store.net.random_node(&mut rng);
        if !dead.contains(&c) {
            break c;
        }
    };
    let retry = RetryPolicy::fixed(256, 6);
    let got = store
        .get_quorum(reader, key, make_faulty, 0xD00D, retry)
        .expect("k live covers are a read quorum");
    assert_eq!(got, value);
    println!("quorum read reconstructed the item from {k} of the surviving covers\n");

    // churn: the dead covers really leave, new servers join — repair
    // (hooked into the wire-churn entry points) re-materializes every
    // share the clique shift displaced
    let mut transport = Inline;
    let mut rebuilt = 0usize;
    for (i, &d) in dead.iter().enumerate() {
        let (_, report) = store.leave_over(d, &mut transport, i as u64);
        rebuilt += report.shares_rebuilt;
        assert_eq!(report.items_lost, 0);
    }
    for i in 0..4u64 {
        let host = store.net.random_node(&mut rng);
        let kind = store.kind;
        if let Some((_, _, report)) =
            store.join_over(host, Point(rng.gen()), kind, i, &mut transport, retry)
        {
            rebuilt += report.shares_rebuilt;
        }
    }
    println!("churned {} leaves + 4 joins; repair rebuilt {rebuilt} shares", dead.len());

    let got = store.get(reader, key, &mut rng).expect("still readable");
    assert_eq!(got, value);
    println!("item still reconstructs at quorum on the churned network — self-healing works");
}
