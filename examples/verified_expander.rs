//! A verified dynamic expander (Section 5): servers with 2D
//! identifiers chosen by the 2D Multiple Choice rule, cells from a
//! torus Voronoi diagram, edges from the Gabber-Galil maps — and a
//! *certificate* of expansion computed from the network itself.
//!
//! ```sh
//! cargo run --release --example verified_expander
//! ```

use continuous_discrete::core::rng::seeded;
use continuous_discrete::expander::spectral::analyze;
use continuous_discrete::expander::{smoothness2_check, GgExpander, TwoDMultipleChoice};

fn main() {
    let mut rng = seeded(5);
    let n = 2 * 16 * 16; // 512 = 2m², so the smoothness-2 grids are exact

    // 1. Servers pick 2D identifiers with the 2D Multiple Choice rule.
    let ids = TwoDMultipleChoice::build(n, 4, &mut rng);
    let report = smoothness2_check(ids.points());
    println!(
        "{n} servers joined; smoothness-2 check: {} empty big rects, {} crowded small rects → {}",
        report.empty_big,
        report.crowded_small,
        if report.passed() { "smooth (ρ ≤ 2)" } else { "NOT smooth" }
    );

    // 2. Discretise the Gabber-Galil continuous expander over the
    //    Voronoi cells of those identifiers.
    let x = GgExpander::build(ids.points());
    let (max_deg, mean_deg) = x.degree_stats();
    println!("Gabber-Galil edges derived: max degree {max_deg}, mean {mean_deg:.1} (Θ(ρ) = O(1))");

    // 3. Verify expansion — this is the paper's headline: smoothness
    //    *certifies* expansion, no randomness assumptions needed.
    let r = analyze(&x.full_adjacency(), 800, 99);
    println!("spectral gap 1−λ₂ = {:.3}", r.gap);
    println!("conductance certificate: {:.3} ≤ φ(G) ≤ {:.3}", r.cheeger_lower, r.sweep_conductance);
    println!("continuous-graph target (Thm 5.1): (2−√3)/2 ≈ {:.3}", (2.0 - 3.0f64.sqrt()) / 2.0);

    // 4. Application preview: expander ⇒ random walks mix in O(log n)
    //    steps — the basis for load balancing and probabilistic quorums.
    let steps = ((n as f64).ln() / r.gap).ceil();
    println!("⇒ random walks mix in ≈ ln(n)/gap ≈ {steps:.0} steps on this network");
}
