//! Resilient storage: the overlapping DHT of Section 6 with
//! Reed-Solomon shares instead of replicas (§6.2). A quarter of the
//! servers fail — some silently (fail-stop), later some lie (false
//! message injection) — and every item stays retrievable.
//!
//! ```sh
//! cargo run --release --example resilient_store
//! ```

use continuous_discrete::core::rng::seeded;
use continuous_discrete::core::Point;
use continuous_discrete::fault::storage::ErasureStore;
use continuous_discrete::fault::{FaultModel, OverlapNet, OverlapNodeId};
use rand::Rng;

fn main() {
    let mut rng = seeded(13);
    let n = 1024usize;
    let mut net = OverlapNet::build(n, &mut rng);
    let (_, mean_cov) = net.coverage_stats(200, &mut rng);
    println!(
        "overlapping DHT with {n} servers; every point covered by ≈{mean_cov:.0} servers (Θ(log n))"
    );

    // store 20 items as 3-of-m Reed-Solomon shares across their covers
    let mut store = ErasureStore::new(3);
    let mut locations = Vec::new();
    for item in 0..20u64 {
        let loc = Point(rng.gen());
        let shares = store.put(&net, item, loc, format!("document-{item}").as_bytes());
        locations.push(loc);
        if item < 3 {
            println!("item {item}: {shares} shares placed (any 3 reconstruct)");
        }
    }

    // disaster: 25% of servers fail-stop
    net.fail_random(0.25, &mut rng);
    println!("\n{} servers failed (25%, fail-stop)", net.failed.len());
    let mut ok = 0;
    for item in 0..20u64 {
        let from = loop {
            let id = OverlapNodeId(rng.gen_range(0..n as u32));
            if net.alive(id) {
                break id;
            }
        };
        if let Ok((value, msgs)) = store.get(&net, from, item, &mut rng) {
            assert_eq!(value, format!("document-{item}").as_bytes());
            ok += 1;
            if item < 3 {
                println!("item {item} reconstructed in {msgs} messages");
            }
        }
    }
    println!("{ok}/20 items retrievable despite the failures (Theorem 6.4)");

    // worse: failed servers start lying — switch to majority lookup
    net.model = FaultModel::FalseMessageInjection;
    net.fail_random(0.15, &mut rng);
    println!("\nnow {} servers inject false messages", net.failed.len());
    let mut correct = 0;
    let mut total_msgs = 0usize;
    for _ in 0..50 {
        let from = loop {
            let id = OverlapNodeId(rng.gen_range(0..n as u32));
            if net.alive(id) {
                break id;
            }
        };
        let out = net.majority_lookup(from, Point(rng.gen()));
        correct += out.correct as usize;
        total_msgs += out.messages;
    }
    println!(
        "majority lookup: {correct}/50 correct, ≈{} messages each (O(log³ n), Theorem 6.6)",
        total_msgs / 50
    );
}
