//! "Make any static network dynamic" (Section 7): take a classic
//! interconnection topology — here a torus running a distributed
//! averaging computation — and run it over a dynamic server population
//! via the Φ emulation, with the Theorem 7.1 overheads printed.
//!
//! ```sh
//! cargo run --release --example make_it_dynamic
//! ```

use continuous_discrete::balance::IdStrategy;
use continuous_discrete::core::pointset::PointSet;
use continuous_discrete::core::rng::seeded;
use continuous_discrete::emulation::{Emulation, GraphFamily};

fn main() {
    let mut rng = seeded(21);

    // 1. A dynamic population: 300 servers choose smooth identifiers
    //    with the Multiple Choice algorithm (Section 4).
    let ring = IdStrategy::MultipleChoice { t: 3 }.build_ring(300, &mut rng);
    let hosts = PointSet::new(ring.iter().collect());
    println!("{} servers, smoothness ρ = {:.1}", hosts.len(), hosts.smoothness());

    // 2. Emulate a 512-node torus over them.
    let emu = Emulation::with_default_k(GraphFamily::Torus, hosts);
    let s = emu.stats();
    println!(
        "emulating a {}-node torus: guests/host ≤ {}, host degree ≤ {}, guest edges/host edge ≤ {}",
        1u64 << emu.k,
        s.max_guests_per_host,
        s.max_host_degree,
        s.max_guest_edges_per_host_edge
    );
    println!(
        "(Theorem 7.1 bounds: ρ+1 = {:.1}, ρ·d = {:.1}, ρ² = {:.1})",
        s.rho + 1.0,
        s.rho * 4.0,
        s.rho * s.rho
    );

    // 3. Run a guest computation in real time: iterative averaging
    //    (discrete heat diffusion) on the emulated torus.
    let n_guest = 1usize << emu.k;
    let mut states: Vec<f64> = (0..n_guest).map(|i| if i == 0 { 1000.0 } else { 0.0 }).collect();
    let total: f64 = states.iter().sum();
    for round in 0..200 {
        states = emu.step(&states, |_, own, nbrs| {
            let nsum: f64 = nbrs.iter().copied().sum();
            (own + nsum) / (1.0 + nbrs.len() as f64)
        });
        if round % 50 == 49 {
            let max = states.iter().copied().fold(0.0, f64::max);
            let min = states.iter().copied().fold(f64::INFINITY, f64::min);
            println!("round {:3}: spread max−min = {:.4}", round + 1, max - min);
        }
    }
    let end_total: f64 = states.iter().sum();
    println!(
        "heat diffused to equilibrium (mass {total:.0} → {end_total:.0}); \
         every round ran at constant slowdown on the dynamic hosts"
    );
}
