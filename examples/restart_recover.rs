//! Restart without a repair storm: a replicated store runs over the
//! crash-consistent WAL shelves (`dh_store::FileShelves`), the process
//! dies — once cleanly, once mid-write — and the restarted node
//! re-serves every committed share from disk. The anti-entropy pass
//! prices **zero** repair messages after a clean death, and the torn
//! write is invisible (rolled back), never half-applied.
//!
//! ```sh
//! cargo run --release --example restart_recover
//! ```

use bytes::Bytes;
use continuous_discrete::core::graph::DistanceHalving;
use continuous_discrete::core::pointset::PointSet;
use continuous_discrete::core::rng::seeded;
use continuous_discrete::dht::DhNetwork;
use continuous_discrete::proto::transport::Inline;
use continuous_discrete::replica::ReplicatedDht;
use continuous_discrete::store::{CrashPoint, FileShelves, ScratchPath, Shelves};
use std::path::Path;

const SEED: u64 = 42;
const N: usize = 512;
const M: u8 = 8;
const K: u8 = 4;

fn value_of(key: u64) -> Bytes {
    Bytes::from(format!("durable-item-{key}"))
}

/// A node restart: the network and placement hash are rebuilt from the
/// seed (they are protocol state, re-derivable); only the shelves come
/// back from disk, via the WAL recovery scan.
fn boot(wal: &Path) -> (ReplicatedDht<DistanceHalving, FileShelves>, rand::rngs::StdRng) {
    let mut rng = seeded(SEED);
    let net = DhNetwork::new(&PointSet::random(N, &mut rng));
    let shelves = FileShelves::open(wal).expect("open / recover WAL");
    (ReplicatedDht::with_shelves(net, M, K, shelves, &mut rng), rng)
}

fn main() {
    let scratch = ScratchPath::new("restart-recover-demo");

    // ---- life 1: store 24 items, then the process dies (cleanly) ----
    {
        let (mut store, mut rng) = boot(scratch.path());
        for key in 0..24u64 {
            let from = store.net.random_node(&mut rng);
            store.put(from, key, value_of(key), &mut rng);
        }
        println!(
            "life 1: stored 24 items as {} sealed shares, WAL at {} bytes",
            store.shelved_shares(),
            store.shelves.wal_len()
        );
    } // drop = process death; nothing in RAM survives

    // ---- life 2: recover, serve reads, prove there is no storm ----
    let (mut store, mut rng) = boot(scratch.path());
    let rec = store.shelves.recovery();
    println!(
        "life 2: recovery replayed {} records ({} skipped, {} torn bytes) -> {} items",
        rec.records,
        rec.skipped,
        rec.torn_bytes,
        store.items()
    );
    assert_eq!(store.items(), 24);

    let mut transport = Inline;
    let report = store.repair(&mut transport, 0xB007);
    println!(
        "anti-entropy after restart: {} msgs, {} bytes on the wire (no repair storm)",
        report.msgs, report.bytes
    );
    assert_eq!(report.msgs, 0, "a clean restart must not pull a single share");

    let from = store.net.random_node(&mut rng);
    assert_eq!(store.get(from, 7, &mut rng), Some(value_of(7)));
    println!("quorum read of item 7 served straight from the recovered shelves");

    // ---- life 2 ends violently: an overwrite dies before its commit ----
    store.shelves.arm(CrashPoint { after_records: 2, torn_bytes: 9 });
    let from = store.net.random_node(&mut rng);
    store.put(from, 7, Bytes::from_static(b"generation two, torn"), &mut rng);
    assert!(store.shelves.crashed());
    println!("\nlife 2 died mid-overwrite: 2 park records durable, commit never written");
    drop(store);

    // ---- life 3: the torn generation is invisible, not half-applied ----
    let (store, mut rng) = boot(scratch.path());
    let rec = store.shelves.recovery();
    println!(
        "life 3: recovery truncated {} torn bytes; item 7 is at generation {}",
        rec.torn_bytes, store.shelves.map()[&7].version
    );
    let from = store.net.random_node(&mut rng);
    assert_eq!(
        store.get(from, 7, &mut rng),
        Some(value_of(7)),
        "the committed generation must survive a torn overwrite"
    );
    println!("item 7 still reads back as its committed value — torn writes roll back");
}
