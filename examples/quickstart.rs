//! Quickstart: build a Distance Halving DHT, store and retrieve items,
//! let servers join and leave, and watch the guarantees hold.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bytes::Bytes;
use continuous_discrete::core::pointset::PointSet;
use continuous_discrete::core::rng::seeded;
use continuous_discrete::core::Point;
use continuous_discrete::dht::storage::Dht;
use continuous_discrete::dht::DhNetwork;
use rand::Rng;

fn main() {
    let mut rng = seeded(42);

    // 1. Bootstrap a 64-server network with random identifier points.
    let net = DhNetwork::new(&PointSet::random(64, &mut rng));
    let mut dht = Dht::new(net, &mut rng);
    println!("built a Distance Halving DHT with {} servers", dht.net.len());

    // 2. Store a few items — each travels to the server covering its
    //    hashed location via the Distance Halving Lookup.
    for (key, value) in [(1u64, "alpha"), (2, "bravo"), (3, "charlie")] {
        let from = dht.net.random_node(&mut rng);
        let route = dht.put(from, key, Bytes::from(value), &mut rng);
        println!(
            "put key {key} ({value:?}) from {} → {} in {} hops",
            from,
            route.destination(),
            route.hops()
        );
    }

    // 3. Retrieve from a different server.
    let from = dht.net.random_node(&mut rng);
    let (route, value) = dht.get(from, 2, &mut rng);
    println!(
        "get key 2 from {} → {:?} in {} hops",
        from,
        value.expect("stored above"),
        route.hops()
    );

    // 4. Churn: servers join (splitting a segment) and leave (merging).
    for _ in 0..20 {
        dht.net.join(Point(rng.gen()));
    }
    for _ in 0..10 {
        let victim = dht.net.random_node(&mut rng);
        dht.net.leave(victim);
    }
    dht.net.validate();
    println!("after churn: {} servers; invariants hold", dht.net.len());

    // 5. Items survive churn.
    for key in [1u64, 2, 3] {
        let from = dht.net.random_node(&mut rng);
        let (_, value) = dht.get(from, key, &mut rng);
        assert!(value.is_some(), "item {key} survived churn");
    }
    println!("all items survived churn");

    // 6. Degrees stay constant (Theorem 2.1/2.2) and lookups logarithmic.
    let (max_deg, avg_deg) = dht.net.degree_stats();
    println!("degrees: max {max_deg}, average {avg_deg:.1} (paper: O(ρ) and ≤ 6 + ring)");
}
