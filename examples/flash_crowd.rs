//! Flash crowd: a single item suddenly becomes wildly popular (the
//! paper's hot-spot scenario, Section 3). Without caching the owner is
//! swamped; the dynamic caching protocol spreads the load over the
//! item's path tree with **zero extra routing delay**.
//!
//! ```sh
//! cargo run --release --example flash_crowd
//! ```

use continuous_discrete::caching::CachedDht;
use continuous_discrete::core::hashing::KWiseHash;
use continuous_discrete::core::pointset::PointSet;
use continuous_discrete::core::rng::seeded;
use continuous_discrete::dht::DhNetwork;

fn main() {
    let mut rng = seeded(7);
    let n = 1024usize;
    let net = DhNetwork::new(&PointSet::random(n, &mut rng));
    let hash = KWiseHash::new(16, &mut rng);
    let c = (n as f64).log2() as u64; // replication threshold = log n
    let mut cache = CachedDht::new(net, hash, c);

    let viral_item = 99u64;
    println!("a flash crowd of {n} requests hits item {viral_item} (threshold c = {c})\n");

    let mut by_level = std::collections::BTreeMap::<u32, usize>::new();
    let mut max_hops = 0usize;
    for _ in 0..n {
        let from = cache.net.random_node(&mut rng);
        let served = cache.request(from, viral_item, &mut rng);
        *by_level.entry(served.level).or_insert(0) += 1;
        max_hops = max_hops.max(served.hops);
    }

    let tree = cache.tree(viral_item).expect("tree exists");
    println!("active tree grew to {} nodes, depth {}", tree.len(), tree.depth());
    println!("(Lemma 3.3 bound: depth ≤ log₂(q/c) + O(1) = {:.0})\n", (n as f64 / c as f64).log2() + 3.0);

    println!("requests served per tree level (root = 0):");
    for (level, count) in &by_level {
        println!("  level {level}: {count} requests");
    }

    let max_supply = cache.supplies().into_iter().map(|(_, s)| s).max().expect("servers exist");
    println!("\nbusiest server supplied {max_supply} requests (without caching: all {n} hit one server)");
    println!("max routing hops: {max_hops} — same as a plain lookup (no caching latency)");

    // the crowd disperses: after two idle epochs the tree collapses
    cache.end_epoch();
    let report = cache.end_epoch();
    println!(
        "\ncrowd gone: active tree collapsed to {} node(s) — caches returned",
        report.active_nodes
    );

    // content update while still cached
    for _ in 0..200 {
        let from = cache.net.random_node(&mut rng);
        cache.request(from, viral_item, &mut rng);
    }
    let (messages, depth) = cache.update_item(viral_item);
    println!("owner pushed a content update: {messages} messages, depth {depth} (O(log q/c))");
}
