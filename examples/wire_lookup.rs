//! The README's protocol-layer example: one Distance Halving lookup
//! driven through the deterministic event engine over a simulated WAN
//! (per-link latency, jitter, 1% loss, end-to-end retry), with full
//! message/byte accounting.

use continuous_discrete::core::pointset::PointSet;
use continuous_discrete::core::Point;
use continuous_discrete::dht::proto::route_kind;
use continuous_discrete::dht::{DhNetwork, LookupKind};
use continuous_discrete::proto::engine::Engine;
use continuous_discrete::proto::wire::Action;
use continuous_discrete::proto::{RetryPolicy, Sim};

fn main() {
    let net = DhNetwork::new(&PointSet::evenly_spaced(1024));
    let sim = Sim::new(7).with_latency(4, 16, 4).with_drop(0.01);
    let mut eng = Engine::new(&net, sim, 42)
        .with_retry(RetryPolicy::patient());

    let op = eng.submit(
        route_kind(LookupKind::DistanceHalving),
        net.live()[0],
        Point::from_f64(0.375),
        Action::Locate,
    );
    eng.run(); // deterministic: same seeds ⇒ same trace, bit for bit

    let out = eng.outcome(op);
    println!(
        "answered by {:?} after {} hops, {} msgs / {} bytes on the wire, t = {:?}",
        out.dest,
        out.path.hops(),
        out.msgs,
        out.bytes,
        out.completed_at,
    );
    assert!(out.ok);
    assert!(net.node(out.dest.expect("completed")).covers(Point::from_f64(0.375)));
}
